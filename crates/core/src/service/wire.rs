//! Line-oriented wire format for `kn serve`.
//!
//! **Requests** are one per line, whitespace-separated `key=value`
//! fields; blank lines and `#` comments are skipped. Exactly one source
//! field is required:
//!
//! ```text
//! corpus=figure7 k=2 procs=2 iters=100 link=single engine=heap
//! ddg=corpus/livermore5.ddg k=2 procs=4 iters=80 scheduler=doacross mm=3 seed=11
//! ```
//!
//! | key | values | default |
//! |---|---|---|
//! | `corpus` | built-in workload name ([`kn_workloads::by_name`]) | — |
//! | `ddg` | path to a text-format DDG file | — |
//! | `k` | communication estimate | corpus value, else 3 |
//! | `procs` | processor budget | corpus value, else 8 |
//! | `iters` | simulated iterations | 100 |
//! | `link` | `unlimited` \| `single` | `unlimited` |
//! | `engine` | `calendar` \| `heap` | `calendar` |
//! | `scheduler` | `cyclic` \| `doacross` \| `doacross-best` | `cyclic` |
//! | `transform` | `off` \| `fission` \| `reduce` \| `all` (pre-scheduling loop transforms; body-sourced corpus workloads only) | `off` |
//! | `mm` | traffic fluctuation factor | 1 |
//! | `seed` | traffic seed | 0 |
//! | `deadline_ms` | per-request deadline in milliseconds | none |
//! | `priority` | `high` \| `normal` \| `low` (queue lane; `low` sheds first under brownout) | `normal` |
//!
//! A repeated key is a parse error — last-wins would silently mask a
//! typo in a machine-generated batch.
//!
//! The bare line `health` is not a scheduling request: it answers one
//! JSON [`PoolHealth`] snapshot ([`health_json`]) in sequence with the
//! other responses, so operators can probe a loaded server over the same
//! connection that is feeding it work.
//!
//! **Responses** are one JSON object per line, in request order, carrying
//! the request id and either the outcome or an error. Responses contain
//! no timing fields — they are deterministic and CI diffs them against a
//! committed golden (`corpus/service_golden.jsonl`); throughput and
//! per-phase latency go to the separate stats JSON
//! ([`throughput_json`]), which varies run to run and is uploaded as an
//! artifact instead of diffed.

use super::{
    LoopOutcome, LoopRequest, LoopSource, PoolHealth, Priority, ScheduleRequest, ScheduleResponse,
    SchedulerChoice, ServiceError, ServiceStats, TransformMode,
};
use kn_sim::{EventEngine, LinkModel, TrafficModel};

/// A parsed request line: the request itself plus the lifecycle options
/// the wire format can attach to it.
#[derive(Clone, Debug)]
pub struct ParsedRequest {
    pub req: ScheduleRequest,
    /// `deadline_ms=` field: how long after admission the request stays
    /// worth executing. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// `priority=` field: queue lane (default `normal`).
    pub priority: Priority,
}

/// Is this line the `health` probe? (Checked before request parsing;
/// the probe takes no `key=value` fields.)
pub fn is_health_line(line: &str) -> bool {
    line.trim() == "health"
}

/// Parse one request line. `Ok(None)` = blank or comment line.
pub fn parse_request_line(line: &str) -> Result<Option<ParsedRequest>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut source: Option<LoopSource> = None;
    let mut req = LoopRequest::default();
    let mut mm: u32 = 1;
    let mut seed: u64 = 0;
    let mut deadline_ms: Option<u64> = None;
    let mut priority = Priority::Normal;
    let mut seen: Vec<&str> = Vec::new();
    for field in line.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("field {field:?} is not key=value"))?;
        if seen.contains(&key) {
            return Err(format!("duplicate key {key:?}"));
        }
        seen.push(key);
        let mut set_source = |s: LoopSource| -> Result<(), String> {
            if source.is_some() {
                return Err("more than one source field (corpus=/ddg=)".into());
            }
            source = Some(s);
            Ok(())
        };
        match key {
            "corpus" => set_source(LoopSource::Corpus(value.to_string()))?,
            "ddg" => set_source(LoopSource::DdgFile(value.to_string()))?,
            "k" => req.k = Some(parse_num(key, value)?),
            "procs" => req.procs = Some(parse_num(key, value)?),
            "iters" => req.iters = parse_num(key, value)?,
            "mm" => mm = parse_num(key, value)?,
            "seed" => seed = parse_num(key, value)?,
            "deadline_ms" => deadline_ms = Some(parse_num(key, value)?),
            "priority" => {
                priority = Priority::from_name(value)
                    .ok_or_else(|| format!("unknown priority {value:?} (high|normal|low)"))?
            }
            "link" => {
                req.sim.link = LinkModel::from_name(value)
                    .ok_or_else(|| format!("unknown link model {value:?}"))?
            }
            "engine" => {
                req.sim.engine = EventEngine::from_name(value)
                    .ok_or_else(|| format!("unknown engine {value:?}"))?
            }
            "scheduler" => {
                req.scheduler = match value {
                    "cyclic" => SchedulerChoice::Cyclic,
                    "doacross" => SchedulerChoice::DoacrossNatural,
                    "doacross-best" => SchedulerChoice::DoacrossBest,
                    other => return Err(format!("unknown scheduler {other:?}")),
                }
            }
            "transform" => {
                req.transform = TransformMode::from_name(value).ok_or_else(|| {
                    format!("unknown transform {value:?} (off|fission|reduce|all)")
                })?
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    let source = source.ok_or("missing source field (corpus= or ddg=)")?;
    req.source = source;
    req.traffic = TrafficModel { mm, seed };
    Ok(Some(ParsedRequest {
        req: ScheduleRequest::Loop(req),
        deadline_ms,
        priority,
    }))
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{key}={value:?} is not a valid number"))
}

/// Full JSON string escaping. Error text can carry anything a panic
/// message contains (newlines included); a raw control character would
/// split one response across lines and break the one-JSON-object-per-line
/// contract.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_f64(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v}"),
        None => "null".to_string(),
    }
}

fn f64_list(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
    format!("[{}]", items.join(", "))
}

/// Render one response as a JSON line. Deterministic: field order is
/// fixed, floats use Rust's shortest-round-trip formatting, and no
/// timing information is included (see module docs).
pub fn response_json(id: u64, resp: &Result<ScheduleResponse, ServiceError>) -> String {
    response_json_with(id, resp, 1)
}

/// [`response_json`] with the attempt count from the retry layer. An
/// `"attempts"` field is appended only when the request was actually
/// retried (`attempts > 1`), so fault-free output — and the committed
/// goldens — are byte-identical with or without the lifecycle layer.
pub fn response_json_with(
    id: u64,
    resp: &Result<ScheduleResponse, ServiceError>,
    attempts: u32,
) -> String {
    let mut line = base_response_json(id, resp);
    if attempts > 1 {
        debug_assert!(line.ends_with('}'));
        line.truncate(line.len() - 1);
        line.push_str(&format!(", \"attempts\": {attempts}}}"));
    }
    line
}

fn base_response_json(id: u64, resp: &Result<ScheduleResponse, ServiceError>) -> String {
    match resp {
        // Lint rejections carry their stable KN0xx code as a dedicated
        // field so clients (and the goldens) can assert on the code
        // without parsing the message.
        Err(e @ ServiceError::InvalidDdg { code, .. }) => format!(
            "{{\"id\": {id}, \"status\": \"error\", \"code\": \"{}\", \"error\": \"{}\"}}",
            esc(code),
            esc(&e.to_string())
        ),
        Err(e) => format!("{{\"id\": {id}, \"status\": \"error\", \"error\": \"{}\"}}", esc(&e.to_string())),
        Ok(ScheduleResponse::Loop(out)) => loop_json(id, out),
        Ok(ScheduleResponse::Table1Row(row)) => format!(
            "{{\"id\": {id}, \"status\": \"ok\", \"kind\": \"table1_row\", \"seed\": {}, \"cyclic_nodes\": {}, \"ours\": {}, \"doacross\": {}}}",
            row.seed,
            row.cyclic_nodes,
            f64_list(&row.ours),
            f64_list(&row.doacross),
        ),
        Ok(ScheduleResponse::Contention {
            ours_free,
            ours_contended,
            doacross_free,
            doacross_contended,
        }) => format!(
            "{{\"id\": {id}, \"status\": \"ok\", \"kind\": \"contention\", \"ours_free\": {ours_free}, \"ours_contended\": {ours_contended}, \"doacross_free\": {doacross_free}, \"doacross_contended\": {doacross_contended}}}"
        ),
        Ok(ScheduleResponse::Figure(r)) => format!(
            "{{\"id\": {id}, \"status\": \"ok\", \"kind\": \"figure\", \"name\": \"{}\", \"seq_time\": {}, \"ours_time\": {}, \"ours_sp\": {}, \"doacross_sp\": {}, \"ii\": {}}}",
            esc(&r.name),
            r.seq_time,
            r.ours_time,
            r.ours_sp,
            r.doacross_sp,
            opt_f64(r.ours_ii),
        ),
    }
}

fn loop_json(id: u64, out: &LoopOutcome) -> String {
    // The `transform` object appears only when the request asked for a
    // transform, so `transform=off` traffic — and every committed golden
    // predating the transform layer — renders byte-identically.
    let transform = match &out.transform {
        None => String::new(),
        Some(t) => format!(
            ", \"transform\": {{\"reduce\": \"{}\", \"fission\": \"{}\", \"pieces\": {}, \"mii_before\": {:.3}, \"mii_after\": {:.3}}}",
            esc(&t.reduce),
            esc(&t.fission),
            t.pieces,
            t.mii_before,
            t.mii_after,
        ),
    };
    format!(
        "{{\"id\": {id}, \"status\": \"ok\", \"kind\": \"loop\", \"name\": \"{}\", \"scheduler\": \"{}\", \"processors_used\": {}, \"seq_time\": {}, \"makespan\": {}, \"sp\": {}, \"messages\": {}, \"comm_cycles\": {}, \"ii\": {}{transform}}}",
        esc(&out.name),
        out.scheduler.name(),
        out.processors_used,
        out.seq_time,
        out.makespan,
        out.sp,
        out.messages,
        out.comm_cycles,
        opt_f64(out.ii),
    )
}

/// Render a [`PoolHealth`] snapshot as one JSON line, answered in
/// sequence for a `health` request line. Unlike scheduling responses
/// this is *not* deterministic (heartbeats and queue depths are live
/// state), so health lines never appear in replayed golden corpora.
pub fn health_json(id: u64, h: &PoolHealth) -> String {
    let workers: Vec<String> = h
        .workers
        .iter()
        .map(|w| {
            let busy = match w.busy {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"index\": {}, \"busy\": {busy}, \"heartbeats\": {}}}",
                w.index, w.heartbeats
            )
        })
        .collect();
    format!(
        "{{\"id\": {id}, \"status\": \"ok\", \"kind\": \"health\", \"workers\": [{}], \"replaced_workers\": {}, \"queued_high\": {}, \"queued_normal\": {}, \"queued_low\": {}, \"inflight\": {}, \"accepting\": {}, \"over_high_water\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_coalesced\": {}, \"cache_evictions\": {}, \"cache_entries\": {}}}",
        workers.join(", "),
        h.replaced_workers,
        h.queued[0],
        h.queued[1],
        h.queued[2],
        h.inflight,
        h.accepting,
        h.over_high_water,
        h.cache_hits,
        h.cache_misses,
        h.cache_coalesced,
        h.cache_evictions,
        h.cache_entries,
    )
}

/// Render the batch throughput/latency stats as JSON (schema
/// `kn-service-throughput-v3`; v2 added the lifecycle counters —
/// retries, expired, cancelled, shed, rejected — and v3 adds the
/// response-cache counters: hits, misses, coalesced, evictions, plus the
/// `cache_entries` gauge sampled at render time). This is the
/// run-varying half of the serve output: wall-clock, requests/second,
/// and the per-phase latency split the workers measured.
/// `requests`/`errors` count *responses* (including malformed lines
/// answered before reaching the pool), so they can exceed the pool-level
/// counters in `stats`.
pub fn throughput_json(
    workers: usize,
    requests: u64,
    errors: u64,
    wall_ns: u64,
    stats: &ServiceStats,
    cache_entries: u64,
) -> String {
    let throughput_rps = if wall_ns > 0 {
        requests as f64 * 1e9 / wall_ns as f64
    } else {
        0.0
    };
    format!(
        "{{\n  \"schema\": \"kn-service-throughput-v3\",\n  \"workers\": {workers},\n  \"requests\": {requests},\n  \"errors\": {errors},\n  \"retries\": {},\n  \"expired\": {},\n  \"cancelled\": {},\n  \"shed\": {},\n  \"rejected\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_coalesced\": {},\n  \"cache_evictions\": {},\n  \"cache_entries\": {cache_entries},\n  \"wall_ns\": {wall_ns},\n  \"throughput_rps\": {throughput_rps:.2},\n  \"exec_ns\": {},\n  \"parse_ns\": {},\n  \"schedule_ns\": {},\n  \"sim_ns\": {}\n}}\n",
        stats.retries,
        stats.expired,
        stats.cancelled,
        stats.shed,
        stats.rejected,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_coalesced,
        stats.cache_evictions,
        stats.exec_ns,
        stats.parse_ns,
        stats.schedule_ns,
        stats.sim_ns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_sim::SimOptions;

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert!(parse_request_line("").unwrap().is_none());
        assert!(parse_request_line("   ").unwrap().is_none());
        assert!(parse_request_line("# a comment").unwrap().is_none());
    }

    #[test]
    fn full_line_round_trips_every_field() {
        let parsed = parse_request_line(
            "corpus=figure7 k=2 procs=4 iters=60 link=single engine=heap scheduler=doacross mm=3 seed=9 deadline_ms=250",
        )
        .unwrap()
        .unwrap();
        assert_eq!(parsed.deadline_ms, Some(250));
        let ScheduleRequest::Loop(r) = parsed.req else {
            panic!("wire produces loop requests");
        };
        assert!(matches!(&r.source, LoopSource::Corpus(n) if n == "figure7"));
        assert_eq!(r.k, Some(2));
        assert_eq!(r.procs, Some(4));
        assert_eq!(r.iters, 60);
        assert_eq!(r.sim.link, LinkModel::SingleMessage);
        assert_eq!(r.sim.engine, EventEngine::Heap);
        assert_eq!(r.scheduler, SchedulerChoice::DoacrossNatural);
        assert_eq!(r.traffic.mm, 3);
        assert_eq!(r.traffic.seed, 9);
    }

    #[test]
    fn defaults_leave_machine_to_the_corpus() {
        let parsed = parse_request_line("corpus=elliptic").unwrap().unwrap();
        assert_eq!(parsed.deadline_ms, None);
        let ScheduleRequest::Loop(r) = parsed.req else {
            panic!("loop request");
        };
        assert_eq!(r.k, None);
        assert_eq!(r.procs, None);
        assert_eq!(r.iters, 100);
        assert_eq!(r.sim, SimOptions::default());
    }

    #[test]
    fn malformed_lines_are_diagnosed() {
        for (line, needle) in [
            ("corpus=figure7 ddg=x.ddg", "more than one source"),
            ("k=3", "missing source"),
            ("corpus=figure7 iters=abc", "not a valid number"),
            ("corpus=figure7 flavor=mild", "unknown field"),
            ("corpus=figure7 engine=abacus", "unknown engine"),
            ("corpus=figure7 link=carrier-pigeon", "unknown link"),
            ("corpus=figure7 scheduler=magic", "unknown scheduler"),
            ("justaword", "not key=value"),
            ("corpus=figure7 k=2 k=3", "duplicate key \"k\""),
            ("corpus=figure7 corpus=figure3", "duplicate key \"corpus\""),
            ("corpus=figure7 deadline_ms=fast", "not a valid number"),
            ("corpus=figure7 priority=urgent", "unknown priority"),
            ("corpus=figure7 priority=low priority=high", "duplicate key"),
        ] {
            let e = parse_request_line(line).unwrap_err();
            assert!(
                e.contains(needle),
                "{line:?}: {e:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn priority_key_parses_and_defaults_to_normal() {
        let p = parse_request_line("corpus=figure7 priority=high")
            .unwrap()
            .unwrap();
        assert_eq!(p.priority, Priority::High);
        let p = parse_request_line("corpus=figure7").unwrap().unwrap();
        assert_eq!(p.priority, Priority::Normal);
    }

    #[test]
    fn health_line_is_recognized_and_rendered() {
        assert!(is_health_line("health"));
        assert!(is_health_line("  health  "));
        assert!(!is_health_line("healthy"));
        assert!(!is_health_line("# health"));
        let h = PoolHealth {
            workers: vec![
                super::super::WorkerHealth {
                    index: 0,
                    busy: Some(7),
                    heartbeats: 42,
                },
                super::super::WorkerHealth {
                    index: 2,
                    busy: None,
                    heartbeats: 9,
                },
            ],
            replaced_workers: 1,
            queued: [1, 2, 3],
            inflight: 1,
            accepting: true,
            over_high_water: false,
            cache_hits: 10,
            cache_misses: 4,
            cache_coalesced: 6,
            cache_evictions: 2,
            cache_entries: 2,
        };
        let line = health_json(5, &h);
        assert_eq!(
            line,
            "{\"id\": 5, \"status\": \"ok\", \"kind\": \"health\", \"workers\": [{\"index\": 0, \"busy\": 7, \"heartbeats\": 42}, {\"index\": 2, \"busy\": null, \"heartbeats\": 9}], \"replaced_workers\": 1, \"queued_high\": 1, \"queued_normal\": 2, \"queued_low\": 3, \"inflight\": 1, \"accepting\": true, \"over_high_water\": false, \"cache_hits\": 10, \"cache_misses\": 4, \"cache_coalesced\": 6, \"cache_evictions\": 2, \"cache_entries\": 2}"
        );
        assert_eq!(line.lines().count(), 1);
    }

    #[test]
    fn response_json_is_stable_and_escaped() {
        let ok = ScheduleResponse::Loop(LoopOutcome {
            name: "fig \"7\"".into(),
            scheduler: SchedulerChoice::Cyclic,
            processors_used: 2,
            seq_time: 500,
            makespan: 255,
            sp: 49.0,
            messages: 10,
            comm_cycles: 20,
            ii: Some(2.5),
            transform: None,
        });
        let line = response_json(3, &Ok(ok));
        assert_eq!(
            line,
            "{\"id\": 3, \"status\": \"ok\", \"kind\": \"loop\", \"name\": \"fig \\\"7\\\"\", \"scheduler\": \"cyclic\", \"processors_used\": 2, \"seq_time\": 500, \"makespan\": 255, \"sp\": 49, \"messages\": 10, \"comm_cycles\": 20, \"ii\": 2.5}"
        );
        let err = response_json(4, &Err(ServiceError::BadRequest("no".into())));
        assert_eq!(
            err,
            "{\"id\": 4, \"status\": \"error\", \"error\": \"bad request: no\"}"
        );
    }

    #[test]
    fn transform_field_parses_and_defaults_off() {
        let p = parse_request_line("corpus=reduction/sum transform=all")
            .unwrap()
            .unwrap();
        let ScheduleRequest::Loop(r) = p.req else {
            panic!("loop request");
        };
        assert_eq!(r.transform, super::TransformMode::All);
        let p = parse_request_line("corpus=figure7").unwrap().unwrap();
        let ScheduleRequest::Loop(r) = p.req else {
            panic!("loop request");
        };
        assert_eq!(r.transform, super::TransformMode::Off);
        let e = parse_request_line("corpus=figure7 transform=alchemy").unwrap_err();
        assert!(e.contains("unknown transform"), "{e:?}");
    }

    #[test]
    fn transform_summary_renders_with_fixed_precision() {
        let ok = ScheduleResponse::Loop(LoopOutcome {
            name: "reduction/sum".into(),
            scheduler: SchedulerChoice::Cyclic,
            processors_used: 2,
            seq_time: 300,
            makespan: 120,
            sp: 60.0,
            messages: 0,
            comm_cycles: 0,
            ii: Some(1.0),
            transform: Some(super::super::TransformSummary {
                reduce: "applied".into(),
                fission: "skipped(XS01)".into(),
                pieces: 1,
                mii_before: 2.0,
                mii_after: 0.0,
            }),
        });
        let line = response_json(9, &Ok(ok));
        assert!(
            line.ends_with(
                "\"transform\": {\"reduce\": \"applied\", \"fission\": \"skipped(XS01)\", \"pieces\": 1, \"mii_before\": 2.000, \"mii_after\": 0.000}}"
            ),
            "{line:?}"
        );
        assert_eq!(line.lines().count(), 1);
    }

    #[test]
    fn attempts_field_appears_only_after_a_retry() {
        let err: Result<ScheduleResponse, ServiceError> =
            Err(ServiceError::Panicked("boom".into()));
        // attempts <= 1 renders exactly like the pre-lifecycle format, so
        // the committed goldens stay byte-identical.
        assert_eq!(response_json_with(0, &err, 1), response_json(0, &err));
        assert_eq!(response_json_with(0, &err, 0), response_json(0, &err));
        let retried = response_json_with(0, &err, 3);
        assert!(retried.ends_with(", \"attempts\": 3}"), "{retried:?}");
        assert!(retried.starts_with("{\"id\": 0, "), "{retried:?}");
    }

    #[test]
    fn control_characters_in_error_text_stay_on_one_line() {
        // Panic payloads are routinely multi-line (assert_eq! output);
        // the response must still be exactly one valid JSON line.
        let err = response_json(
            7,
            &Err(ServiceError::Panicked("left:\n  1\nright:\t2\u{1}".into())),
        );
        assert_eq!(err.lines().count(), 1, "{err:?}");
        assert!(err.contains("left:\\n  1\\nright:\\t2\\u0001"), "{err:?}");
    }

    #[test]
    fn throughput_json_has_schema_rate_and_lifecycle_counters() {
        let stats = ServiceStats {
            submitted: 4,
            completed: 4,
            errors: 1,
            retries: 2,
            shed: 1,
            cache_hits: 3,
            cache_coalesced: 1,
            exec_ns: 4000,
            parse_ns: 1000,
            schedule_ns: 2000,
            sim_ns: 500,
            ..Default::default()
        };
        let j = throughput_json(2, 4, 1, 2_000_000_000, &stats, 5);
        assert!(j.contains("\"schema\": \"kn-service-throughput-v3\""));
        assert!(j.contains("\"throughput_rps\": 2.00"));
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("\"retries\": 2"));
        assert!(j.contains("\"shed\": 1"));
        assert!(j.contains("\"rejected\": 0"));
        assert!(j.contains("\"cache_hits\": 3"));
        assert!(j.contains("\"cache_misses\": 0"));
        assert!(j.contains("\"cache_coalesced\": 1"));
        assert!(j.contains("\"cache_evictions\": 0"));
        assert!(j.contains("\"cache_entries\": 5"));
    }
}
