//! Typed requests, responses, and the per-request execution pipeline.
//!
//! [`execute`] is the sequential twin of what a worker thread runs: every
//! response is a pure function of its request, which is what the service's
//! determinism guarantee (module docs) rests on.

use crate::experiments::{ablate, figures, table1};
use kn_doacross::{doacross_schedule, DoacrossOptions, Reorder};
use kn_metrics::percentage_parallelism_clamped;
use kn_sched::{Cycle, MachineConfig};
use kn_sim::{sequential_time, EventEngine, SimOptions, TrafficModel};
use kn_workloads::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where the loop to schedule comes from.
#[derive(Clone, Debug)]
pub enum LoopSource {
    /// A built-in corpus workload by name (see [`kn_workloads::by_name`]).
    Corpus(String),
    /// A `.ddg` file in the text format of [`kn_ddg::text`], read at
    /// execution time.
    DdgFile(String),
    /// DDG text supplied inline.
    DdgText(String),
    /// An in-memory graph (API callers; not expressible in the wire
    /// format).
    Graph { name: String, graph: kn_ddg::Ddg },
}

/// Which scheduler answers the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerChoice {
    /// The paper's pipeline: classification + `Cyclic-sched` + flow
    /// placement ([`kn_sched::schedule_loop`]).
    Cyclic,
    /// DOACROSS with the natural body order.
    DoacrossNatural,
    /// DOACROSS with the best reordering (exhaustive up to the same cap
    /// the figure drivers use).
    DoacrossBest,
}

impl SchedulerChoice {
    /// Wire name (`scheduler=` value).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerChoice::Cyclic => "cyclic",
            SchedulerChoice::DoacrossNatural => "doacross",
            SchedulerChoice::DoacrossBest => "doacross-best",
        }
    }
}

/// Which `kn-xform` passes to run before scheduling (`transform=` wire
/// field). Defaults to [`TransformMode::Off`], so every pre-existing
/// request — and every committed golden — is byte-identical with the
/// transform layer present. Only body-sourced corpus workloads (those
/// with a [`kn_workloads::body_by_name`] entry) can be transformed:
/// graph-only sources have no statement-level IR for the differential
/// harness to replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransformMode {
    #[default]
    Off,
    Fission,
    Reduce,
    All,
}

impl TransformMode {
    /// Wire name (`transform=` value).
    pub fn name(self) -> &'static str {
        match self {
            TransformMode::Off => "off",
            TransformMode::Fission => "fission",
            TransformMode::Reduce => "reduce",
            TransformMode::All => "all",
        }
    }

    /// Inverse of [`TransformMode::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "off" => TransformMode::Off,
            "fission" => TransformMode::Fission,
            "reduce" => TransformMode::Reduce,
            "all" => TransformMode::All,
            _ => return None,
        })
    }

    fn options(self) -> kn_xform::TransformOptions {
        kn_xform::TransformOptions {
            fission: matches!(self, TransformMode::Fission | TransformMode::All),
            reduce: matches!(self, TransformMode::Reduce | TransformMode::All),
        }
    }
}

/// What the transform front-end did to a request's loop, echoed in the
/// response so clients can tell a fissioned 3-piece schedule from a
/// monolithic one. Pass fields hold [`kn_xform::PassStatus::render`]
/// strings (`"applied"`, `"skipped(XS02)"`, `"off"`).
#[derive(Clone, Debug, PartialEq)]
pub struct TransformSummary {
    pub reduce: String,
    pub fission: String,
    /// Independently scheduled sub-loops (1 = no split).
    pub pieces: usize,
    /// Recurrence bound of the original body.
    pub mii_before: f64,
    /// Worst recurrence bound over the transformed pieces.
    pub mii_after: f64,
}

/// Schedule-and-simulate one loop on one machine configuration.
#[derive(Clone, Debug)]
pub struct LoopRequest {
    pub source: LoopSource,
    /// Processor budget; `None` = the corpus workload's paper value, or 8
    /// for non-corpus sources.
    pub procs: Option<usize>,
    /// Communication-cost estimate `k`; `None` = the corpus workload's
    /// paper value, or 3 for non-corpus sources.
    pub k: Option<u32>,
    /// Iterations executed on the simulated machine.
    pub iters: u32,
    /// Execution model: link capacity + event-queue engine.
    pub sim: SimOptions,
    /// Run-time traffic fluctuation.
    pub traffic: TrafficModel,
    pub scheduler: SchedulerChoice,
    /// Pre-scheduling loop transforms (default off; see [`TransformMode`]).
    pub transform: TransformMode,
}

impl Default for LoopRequest {
    fn default() -> Self {
        Self {
            source: LoopSource::Corpus("figure7".into()),
            procs: None,
            k: None,
            iters: 100,
            sim: SimOptions::default(),
            traffic: TrafficModel::stable(0),
            scheduler: SchedulerChoice::Cyclic,
            transform: TransformMode::Off,
        }
    }
}

/// One unit of service work. `Loop` is the externally reachable request
/// (the wire format produces only this variant); the experiment-cell
/// variants are how the parallel drivers (`run_table1_par`,
/// `contention_ablation_par`, `figure_reports_par`) submit their cells to
/// the same pool, so the repository has one fan-out engine.
#[derive(Clone, Debug)]
pub enum ScheduleRequest {
    /// Schedule and simulate one loop.
    Loop(LoopRequest),
    /// One Table 1 cell: one seed under every traffic setting of `config`.
    Table1Row {
        config: Arc<table1::Table1Config>,
        seed: u64,
    },
    /// One contention-ablation cell.
    ContentionCell {
        seed: u64,
        k: u32,
        procs: usize,
        iters: u32,
        engine: EventEngine,
    },
    /// One full figure report.
    Figure {
        workload: Workload,
        iters: u32,
        sim: SimOptions,
    },
}

impl ScheduleRequest {
    /// A default [`LoopRequest`] on a corpus workload — the common case.
    pub fn loop_on_corpus(name: &str) -> Self {
        ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::Corpus(name.to_string()),
            ..LoopRequest::default()
        })
    }
}

/// Result of a [`ScheduleRequest::Loop`].
#[derive(Clone, Debug, PartialEq)]
pub struct LoopOutcome {
    /// Source name (corpus name, file path, or supplied graph name).
    pub name: String,
    pub scheduler: SchedulerChoice,
    /// Processors the schedule actually uses.
    pub processors_used: usize,
    /// Sequential execution time for `iters` iterations.
    pub seq_time: Cycle,
    /// Simulated completion time under the request's traffic + links.
    pub makespan: Cycle,
    /// Percentage parallelism `(s - p)/s * 100`, clamped at 0.
    pub sp: f64,
    /// Cross-processor messages delivered.
    pub messages: u64,
    /// Total actual communication cycles.
    pub comm_cycles: u64,
    /// Steady-state cycles/iteration of the Cyclic core (Cyclic scheduler
    /// only; `None` for DOALL loops, DOACROSS, and multi-piece fissioned
    /// schedules, whose pieces each have their own II).
    pub ii: Option<f64>,
    /// Transform report when the request asked for one (`None` when
    /// `transform=off`, which keeps pre-transform responses byte-stable).
    pub transform: Option<TransformSummary>,
}

/// One response; the variant mirrors the request's.
#[derive(Clone, Debug)]
pub enum ScheduleResponse {
    Loop(LoopOutcome),
    Table1Row(table1::Table1Row),
    Contention {
        ours_free: f64,
        ours_contended: f64,
        doacross_free: f64,
        doacross_contended: f64,
    },
    Figure(Box<figures::FigureReport>),
}

/// Why a request failed. Every variant is a *response* — the pool stays
/// healthy and later requests are unaffected. The lifecycle layer retries
/// the [transient](ServiceError::is_transient) variants up to the attempt
/// budget before letting them stand as final.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The loop source could not be resolved (unknown corpus name,
    /// unreadable file, DDG parse error).
    BadRequest(String),
    /// The DDG parsed but failed the `kn-verify` lint pass at admission:
    /// `code` is the stable `KN0xx` diagnostic code of the first error
    /// finding (see `docs/diagnostics.md`). The request never reached a
    /// worker.
    InvalidDdg { code: String, message: String },
    /// Source resolved but the scheduler or simulator rejected it.
    Sched(String),
    /// The pipeline panicked; the worker caught it at the request
    /// boundary. Transient (retried).
    Panicked(String),
    /// An injected fault fired, or the response failed the sanity
    /// validator ([`validate_response`]). Transient (retried).
    Faulted(String),
    /// The caller cancelled the request before it produced a response.
    Cancelled,
    /// The request's deadline passed before it finished; it was shed at
    /// dequeue, between attempts, or at a pipeline phase boundary.
    Expired,
    /// The request was still queued when `shutdown(DrainPolicy::Shed)`
    /// closed the service.
    ShuttingDown,
    /// `collect` was asked for an id this service never admitted, or one
    /// whose response was already collected.
    UnknownRequest,
    /// `collect_timeout` gave up waiting; the request is still running
    /// and its real response remains collectable.
    Timeout,
    /// The brownout policy shed this request under overload: either it
    /// was still queued when a higher-priority arrival claimed the last
    /// slot, or it arrived as `Priority::Low` while the queue was past
    /// the high-water mark. Final — resubmit once load subsides.
    Overloaded,
}

impl ServiceError {
    /// Worth retrying? Panics and injected/validated faults are assumed
    /// transient; everything else is a deterministic property of the
    /// request or a lifecycle verdict that retrying cannot change.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServiceError::Panicked(_) | ServiceError::Faulted(_))
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::InvalidDdg { code, message } => {
                write!(f, "invalid DDG [{code}]: {message}")
            }
            ServiceError::Sched(m) => write!(f, "scheduling failed: {m}"),
            ServiceError::Panicked(m) => write!(f, "request panicked: {m}"),
            ServiceError::Faulted(m) => write!(f, "transient fault: {m}"),
            ServiceError::Cancelled => write!(f, "cancelled"),
            ServiceError::Expired => write!(f, "deadline expired"),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::UnknownRequest => write!(f, "unknown request id"),
            ServiceError::Timeout => write!(f, "collect timed out"),
            ServiceError::Overloaded => write!(f, "overloaded: shed by brownout policy"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Cooperative execution context threaded through the pipeline: the
/// request's cancellation flag and deadline, checked at phase boundaries
/// (after source resolution and after scheduling) so abandoned or expired
/// work stops before its most expensive stage instead of running to
/// completion. [`ExecCtx::none`] (no checks) is what the sequential
/// reference executor uses.
#[derive(Clone, Debug, Default)]
pub struct ExecCtx {
    pub cancel: Option<Arc<AtomicBool>>,
    pub deadline: Option<Instant>,
    /// Worker heartbeat counter, bumped on every [`ExecCtx::check`]. The
    /// watchdog declares a worker stuck only when this stops advancing
    /// while the worker stays busy on the same request — progress through
    /// phase boundaries, not wall time spent inside a phase, is what
    /// counts as liveness.
    pub beat: Option<Arc<AtomicU64>>,
}

impl ExecCtx {
    /// A context that never cancels or expires.
    pub fn none() -> Self {
        Self::default()
    }

    /// Err if the request should stop now: [`ServiceError::Cancelled`]
    /// wins over [`ServiceError::Expired`].
    pub fn check(&self) -> Result<(), ServiceError> {
        if let Some(b) = &self.beat {
            b.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return Err(ServiceError::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(ServiceError::Expired);
            }
        }
        Ok(())
    }
}

/// Cheap sanity checks on a successful response — the detection half of
/// the detect-fault-and-retry discipline. A response violating an
/// invariant the pipeline can never legitimately produce (a zero makespan
/// for scheduled work, negative parallelism, an impossible message count)
/// is treated as a transient fault and retried. Injected
/// [`Fault::Garbage`](super::faultinject::Fault::Garbage) responses are
/// built to trip these checks.
pub fn validate_response(resp: &ScheduleResponse) -> Result<(), String> {
    if let ScheduleResponse::Loop(out) = resp {
        if out.messages == u64::MAX {
            return Err("impossible message count".into());
        }
        if out.sp < 0.0 || out.sp > 100.0 {
            return Err(format!("parallelism {}% outside [0, 100]", out.sp));
        }
        if out.makespan == 0 && out.seq_time > 0 {
            return Err("zero makespan for non-empty work".into());
        }
    }
    Ok(())
}

/// Per-request phase latencies, accumulated into
/// [`ServiceStats`](super::ServiceStats). Experiment-cell requests run
/// their phases interleaved inside one cell function and report zeros
/// here (their total still lands in `exec_ns`).
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestTiming {
    pub parse_ns: u64,
    pub schedule_ns: u64,
    pub sim_ns: u64,
}

/// Per-worker state reused across requests: resolved corpus workloads
/// keyed by name and parsed DDG sources keyed by the full source text
/// (not a hash — requests are externally supplied, so a colliding digest
/// must never serve the wrong graph). A long-lived service answering
/// repeated requests over the same loops skips re-building and
/// re-parsing them; the caches live as long as the worker thread.
#[derive(Default)]
pub struct WorkerScratch {
    corpus: HashMap<String, Workload>,
    parsed: HashMap<String, kn_ddg::Ddg>,
}

/// A resolved [`LoopSource`]: display name, graph, and — for corpus
/// workloads — the paper's (procs, k) to fall back on.
struct ResolvedSource {
    name: String,
    graph: kn_ddg::Ddg,
    machine_defaults: Option<(usize, u32)>,
}

impl WorkerScratch {
    fn resolve(&mut self, source: &LoopSource) -> Result<ResolvedSource, ServiceError> {
        match source {
            LoopSource::Corpus(name) => {
                if !self.corpus.contains_key(name) {
                    let w = kn_workloads::by_name(name).ok_or_else(|| {
                        ServiceError::BadRequest(format!("unknown corpus workload {name:?}"))
                    })?;
                    self.corpus.insert(name.clone(), w);
                }
                let w = &self.corpus[name];
                Ok(ResolvedSource {
                    name: w.name.to_string(),
                    graph: w.graph.clone(),
                    machine_defaults: Some((w.procs, w.k)),
                })
            }
            LoopSource::DdgFile(path) => {
                // Re-read every time (the file may change under a
                // long-lived service); the *parse* is cached by content.
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ServiceError::BadRequest(format!("cannot read {path}: {e}")))?;
                Ok(ResolvedSource {
                    name: path.clone(),
                    graph: self.parse_cached(&text)?,
                    machine_defaults: None,
                })
            }
            LoopSource::DdgText(text) => Ok(ResolvedSource {
                name: "inline".to_string(),
                graph: self.parse_cached(text)?,
                machine_defaults: None,
            }),
            LoopSource::Graph { name, graph } => Ok(ResolvedSource {
                name: name.clone(),
                graph: graph.clone(),
                machine_defaults: None,
            }),
        }
    }

    fn parse_cached(&mut self, text: &str) -> Result<kn_ddg::Ddg, ServiceError> {
        if let Some(g) = self.parsed.get(text) {
            return Ok(g.clone());
        }
        let g = kn_ddg::parse_text(text)
            .map_err(|e| ServiceError::BadRequest(format!("DDG parse error: {e}")))?;
        self.parsed.insert(text.to_string(), g.clone());
        Ok(g)
    }
}

/// Canonical identity of a cacheable request: a 64-bit FNV-1a digest of
/// the exact canonical string, kept *alongside* that string. Every cache
/// lookup compares the full canon — requests are externally supplied, so
/// a colliding digest must never serve the wrong response (the same rule
/// [`WorkerScratch`]'s parse cache follows by keying on full source
/// text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct CacheKey {
    /// FNV-1a 64 over `canon`'s bytes — the shard/bucket selector.
    pub fp: u64,
    /// The canonical rendering of (resolved source, machine, sim options,
    /// traffic model, scheduler choice). Exact-match verified on lookup.
    pub canon: String,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Compute the response-cache key for `req`, or `None` when the request
/// is not cacheable: experiment-cell variants (driver-internal, never
/// repeated across users), and file sources that cannot be read right now
/// (the worker will report the error; caching must not mask it).
///
/// The canon embeds the *resolved* source — file sources contribute path
/// **and** content, so a file edited under a long-lived service changes
/// the key — plus every field of the request that the response is a
/// function of. Lifecycle options (deadline, priority, attempt budget)
/// are deliberately absent: they shape *whether* a request completes,
/// never *what* it computes. Fields are joined with US (unit separator)
/// so adjacent values cannot reassociate.
pub(crate) fn cache_key(req: &ScheduleRequest) -> Option<CacheKey> {
    use std::fmt::Write as _;
    let ScheduleRequest::Loop(r) = req else {
        return None;
    };
    let mut canon = String::new();
    match &r.source {
        LoopSource::Corpus(name) => {
            let _ = write!(canon, "corpus\u{1f}{name}");
        }
        LoopSource::DdgFile(path) => {
            // Path matters (it is the response's `name`) and so does the
            // content (what actually gets scheduled).
            let text = std::fs::read_to_string(path).ok()?;
            let _ = write!(canon, "file\u{1f}{path}\u{1f}{text}");
        }
        LoopSource::DdgText(text) => {
            let _ = write!(canon, "text\u{1f}{text}");
        }
        LoopSource::Graph { name, graph } => {
            let _ = write!(canon, "graph\u{1f}{name}");
            for n in graph.node_ids() {
                let node = graph.node(n);
                let _ = write!(
                    canon,
                    "\u{1f}n:{}:{}:{:?}",
                    node.name, node.latency, node.stmt
                );
            }
            for e in graph.edge_ids() {
                let edge = graph.edge(e);
                let _ = write!(
                    canon,
                    "\u{1f}e:{}:{}:{}:{:?}",
                    edge.src.index(),
                    edge.dst.index(),
                    edge.distance,
                    edge.cost
                );
            }
        }
    }
    let _ = write!(
        canon,
        "\u{1f}procs={:?}\u{1f}k={:?}\u{1f}iters={}\u{1f}link={:?}\u{1f}engine={:?}\u{1f}mm={}\u{1f}seed={}\u{1f}sched={}\u{1f}xform={}",
        r.procs,
        r.k,
        r.iters,
        r.sim.link,
        r.sim.engine,
        r.traffic.mm,
        r.traffic.seed,
        r.scheduler.name(),
        r.transform.name()
    );
    let fp = fnv1a(canon.as_bytes());
    Some(CacheKey { fp, canon })
}

/// Execute one request against a worker's scratch, honoring the
/// cooperative context at phase boundaries. Returns the response (or
/// error) plus the phase timing. This is the exact function the pool
/// workers run under their panic guard.
pub(crate) fn execute_with(
    scratch: &mut WorkerScratch,
    req: &ScheduleRequest,
    ctx: &ExecCtx,
) -> (Result<ScheduleResponse, ServiceError>, RequestTiming) {
    let mut timing = RequestTiming::default();
    if let Err(e) = ctx.check() {
        return (Err(e), timing);
    }
    let result = match req {
        ScheduleRequest::Loop(r) => execute_loop(scratch, r, ctx, &mut timing),
        ScheduleRequest::Table1Row { config, seed } => Ok(ScheduleResponse::Table1Row(
            table1::table1_row(config, *seed),
        )),
        ScheduleRequest::ContentionCell {
            seed,
            k,
            procs,
            iters,
            engine,
        } => {
            let (ours_free, ours_contended, doacross_free, doacross_contended) =
                ablate::contention_cell(*seed, *k, *procs, *iters, *engine);
            Ok(ScheduleResponse::Contention {
                ours_free,
                ours_contended,
                doacross_free,
                doacross_contended,
            })
        }
        ScheduleRequest::Figure {
            workload,
            iters,
            sim,
        } => Ok(ScheduleResponse::Figure(Box::new(
            figures::figure_report_with(workload, *iters, sim),
        ))),
    };
    (result, timing)
}

/// Schedule one graph under the request's scheduler choice. In debug
/// builds every schedule the service emits is statically certified
/// (dependences, resources, coverage) before simulation; an unsound
/// scheduler change fails here with a KN03x diagnostic rather than
/// producing silently wrong goldens. Release builds skip the hooks
/// (`certify: None` by default).
fn schedule_one(
    graph: &kn_ddg::Ddg,
    m: &MachineConfig,
    r: &LoopRequest,
) -> Result<(kn_sched::Program, Option<f64>), ServiceError> {
    match r.scheduler {
        SchedulerChoice::Cyclic => {
            #[allow(unused_mut)]
            let mut opts = kn_sched::FullOptions::default();
            #[cfg(debug_assertions)]
            {
                opts.certify = Some(kn_verify::certify_loop_hook);
            }
            let s = kn_sched::schedule_loop(graph, m, r.iters, &opts)
                .map_err(|e| ServiceError::Sched(e.to_string()))?;
            let ii = s.cyclic_ii();
            Ok((s.program, ii))
        }
        SchedulerChoice::DoacrossNatural | SchedulerChoice::DoacrossBest => {
            let reorder = match r.scheduler {
                SchedulerChoice::DoacrossBest => Reorder::Best {
                    exhaustive_cap: 5040,
                },
                _ => Reorder::Natural,
            };
            #[allow(unused_mut)]
            let mut opts = DoacrossOptions {
                reorder,
                ..Default::default()
            };
            #[cfg(debug_assertions)]
            {
                opts.certify = Some(kn_verify::certify_timed_hook);
            }
            let s = doacross_schedule(graph, m, r.iters, &opts)
                .map_err(|e| ServiceError::Sched(e.to_string()))?;
            Ok((s.program, None))
        }
    }
}

fn execute_loop(
    scratch: &mut WorkerScratch,
    r: &LoopRequest,
    ctx: &ExecCtx,
    timing: &mut RequestTiming,
) -> Result<ScheduleResponse, ServiceError> {
    let t0 = Instant::now();
    let ResolvedSource {
        name,
        graph,
        machine_defaults,
    } = scratch.resolve(&r.source)?;
    // Transform stage (front-end work, counted into the parse phase).
    // Only body-sourced corpus workloads carry the statement-level IR the
    // passes and the differential harness need.
    let xform = match r.transform {
        TransformMode::Off => None,
        mode => {
            let LoopSource::Corpus(cname) = &r.source else {
                return Err(ServiceError::BadRequest(
                    "transform= requires a body-sourced corpus workload".to_string(),
                ));
            };
            let body = kn_workloads::body_by_name(cname).ok_or_else(|| {
                ServiceError::BadRequest(format!(
                    "corpus workload {cname:?} is graph-only; transform= needs statement-level IR"
                ))
            })?;
            // `transform_loop` differentially certifies every applied
            // transform; a certification failure means the pass itself is
            // unsound, which must surface as an error, never as a wrong
            // (but fast) schedule.
            Some(
                kn_xform::transform_loop(&name, &body, &mode.options())
                    .map_err(|e| ServiceError::Sched(format!("transform: {e}")))?,
            )
        }
    };
    timing.parse_ns = t0.elapsed().as_nanos() as u64;
    // Phase boundary: parse -> schedule.
    ctx.check()?;

    let (default_procs, default_k) = machine_defaults.unwrap_or((8, 3));
    let procs = r.procs.unwrap_or(default_procs);
    if procs == 0 {
        // MachineConfig::new panics on an empty pool; a zero budget is a
        // request error, not a pipeline fault.
        return Err(ServiceError::BadRequest(
            "procs must be at least 1".to_string(),
        ));
    }
    let m = MachineConfig::new(procs, r.k.unwrap_or(default_k));

    // The loops the simulator runs: the transformed pieces (in manifest
    // order) when a pass fired, else the resolved graph unchanged.
    let piece_graphs: Vec<kn_ddg::Ddg> = match &xform {
        Some(out) if out.changed() => out
            .transformed
            .pieces
            .iter()
            .map(|p| p.graph.clone())
            .collect(),
        _ => vec![graph.clone()],
    };

    let t1 = Instant::now();
    let mut programs = Vec::with_capacity(piece_graphs.len());
    for g in &piece_graphs {
        programs.push(schedule_one(g, &m, r)?);
    }
    timing.schedule_ns = t1.elapsed().as_nanos() as u64;
    // Phase boundary: schedule -> simulate.
    ctx.check()?;

    // Pieces run back-to-back (the fission sequencing manifest), so their
    // simulated times, message counts, and communication cycles sum; the
    // O(pieces) reduction epilogues are not simulated (they are loop-free
    // folds, negligible next to `iters` iterations of loop body).
    let t2 = Instant::now();
    let mut makespan: Cycle = 0;
    let mut messages = 0u64;
    let mut comm_cycles = 0u64;
    let mut processors_used = 0usize;
    for ((program, _), g) in programs.iter().zip(&piece_graphs) {
        let sim = r
            .sim
            .run(program, g, &m, &r.traffic)
            .map_err(|e| ServiceError::Sched(e.to_string()))?;
        makespan += sim.makespan;
        messages += sim.messages;
        comm_cycles += sim.comm_cycles;
        processors_used = processors_used.max(program.used_processors());
    }
    timing.sim_ns = t2.elapsed().as_nanos() as u64;
    let ii = if programs.len() == 1 {
        programs[0].1
    } else {
        None
    };

    // Sequential baseline is always the *original* loop — that is the
    // program the user asked to run, and what a transform has to beat.
    let seq_time = sequential_time(&graph, r.iters);
    Ok(ScheduleResponse::Loop(LoopOutcome {
        name,
        scheduler: r.scheduler,
        processors_used,
        seq_time,
        makespan,
        sp: percentage_parallelism_clamped(seq_time, makespan),
        messages,
        comm_cycles,
        ii,
        transform: xform.map(|out| TransformSummary {
            reduce: out.report.reduce.render(),
            fission: out.report.fission.render(),
            pieces: piece_graphs.len(),
            mii_before: out.report.mii_before,
            mii_after: out.report.mii_after,
        }),
    }))
}

/// Execute one request sequentially with a fresh scratch — the reference
/// the service's responses are tested against, and the sequential
/// baseline the throughput bench compares to.
pub fn execute(req: &ScheduleRequest) -> Result<ScheduleResponse, ServiceError> {
    execute_with(&mut WorkerScratch::default(), req, &ExecCtx::none()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_loop_executes_with_paper_defaults() {
        let r = execute(&ScheduleRequest::loop_on_corpus("figure7")).unwrap();
        let ScheduleResponse::Loop(out) = r else {
            panic!("loop request yields a loop response");
        };
        assert_eq!(out.name, "figure7");
        assert_eq!(out.ii, Some(2.5), "paper defaults (2 PEs, k=2) apply");
        assert!(out.sp > 40.0);
    }

    #[test]
    fn doacross_loop_has_no_ii() {
        let r = execute(&ScheduleRequest::Loop(LoopRequest {
            scheduler: SchedulerChoice::DoacrossNatural,
            ..LoopRequest::default()
        }))
        .unwrap();
        let ScheduleResponse::Loop(out) = r else {
            panic!("loop response");
        };
        assert_eq!(out.ii, None);
        assert_eq!(out.sp, 0.0, "DOACROSS cannot pipeline figure7");
    }

    #[test]
    fn inline_ddg_and_graph_sources_agree() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../corpus/figure7.ddg"
        ))
        .unwrap();
        let graph = kn_ddg::parse_text(&text).unwrap();
        let base = LoopRequest {
            procs: Some(2),
            k: Some(2),
            ..LoopRequest::default()
        };
        let a = execute(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgText(text),
            ..base.clone()
        }))
        .unwrap();
        let b = execute(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::Graph {
                name: "g".into(),
                graph,
            },
            ..base
        }))
        .unwrap();
        let (ScheduleResponse::Loop(a), ScheduleResponse::Loop(b)) = (a, b) else {
            panic!("loop responses");
        };
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sp, b.sp);
    }

    #[test]
    fn bad_sources_are_errors() {
        for (req, needle) in [
            (ScheduleRequest::loop_on_corpus("nope"), "unknown corpus"),
            (
                ScheduleRequest::Loop(LoopRequest {
                    source: LoopSource::DdgFile("no/such/file.ddg".into()),
                    ..LoopRequest::default()
                }),
                "cannot read",
            ),
            (
                ScheduleRequest::Loop(LoopRequest {
                    source: LoopSource::DdgText("node A\nedge A -> B".into()),
                    ..LoopRequest::default()
                }),
                "parse error",
            ),
        ] {
            let e = execute(&req).unwrap_err();
            let ServiceError::BadRequest(m) = &e else {
                panic!("expected BadRequest, got {e:?}");
            };
            assert!(m.contains(needle), "{m:?} should contain {needle:?}");
        }
    }

    #[test]
    fn zero_processor_budget_is_bad_request_not_panic() {
        // MachineConfig::new panics on procs=0; the service must diagnose
        // it as a request error instead (reachable from the wire:
        // `corpus=figure7 procs=0`).
        let e = execute(&ScheduleRequest::Loop(LoopRequest {
            procs: Some(0),
            ..LoopRequest::default()
        }))
        .unwrap_err();
        assert!(
            matches!(&e, ServiceError::BadRequest(m) if m.contains("procs")),
            "{e:?}"
        );
    }

    #[test]
    fn unnormalized_graph_is_sched_error_not_panic() {
        // dist=3 self-loop: schedule_loop refuses (NotNormalized).
        let text = "node X\nedge X -> X dist=3\n";
        let e = execute(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgText(text.into()),
            ..LoopRequest::default()
        }))
        .unwrap_err();
        assert!(matches!(e, ServiceError::Sched(_)), "{e:?}");
    }

    #[test]
    fn scratch_caches_are_reused() {
        let mut scratch = WorkerScratch::default();
        let req = ScheduleRequest::loop_on_corpus("figure7");
        let (a, _) = execute_with(&mut scratch, &req, &ExecCtx::none());
        assert_eq!(scratch.corpus.len(), 1);
        let (b, _) = execute_with(&mut scratch, &req, &ExecCtx::none());
        assert_eq!(scratch.corpus.len(), 1, "second hit reuses the cache");
        let (Ok(ScheduleResponse::Loop(a)), Ok(ScheduleResponse::Loop(b))) = (a, b) else {
            panic!("loop responses");
        };
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn pre_cancelled_context_abandons_at_the_first_boundary() {
        let cancel = Arc::new(AtomicBool::new(true));
        let ctx = ExecCtx {
            cancel: Some(cancel),
            ..ExecCtx::default()
        };
        let (r, timing) = execute_with(
            &mut WorkerScratch::default(),
            &ScheduleRequest::loop_on_corpus("figure7"),
            &ctx,
        );
        assert!(matches!(r, Err(ServiceError::Cancelled)), "{r:?}");
        assert_eq!(timing.schedule_ns, 0, "no scheduling work was done");
    }

    #[test]
    fn expired_context_abandons_between_phases() {
        let ctx = ExecCtx {
            deadline: Some(Instant::now()),
            ..ExecCtx::default()
        };
        let (r, _) = execute_with(
            &mut WorkerScratch::default(),
            &ScheduleRequest::loop_on_corpus("figure7"),
            &ctx,
        );
        assert!(matches!(r, Err(ServiceError::Expired)), "{r:?}");
    }

    #[test]
    fn validator_accepts_real_responses_and_rejects_garbage() {
        let real = execute(&ScheduleRequest::loop_on_corpus("figure7")).unwrap();
        assert!(validate_response(&real).is_ok());
        let ScheduleResponse::Loop(mut out) = real else {
            panic!("loop response");
        };
        out.messages = u64::MAX;
        assert!(validate_response(&ScheduleResponse::Loop(out.clone())).is_err());
        out.messages = 0;
        out.sp = -1.0;
        assert!(validate_response(&ScheduleResponse::Loop(out.clone())).is_err());
        out.sp = 0.0;
        out.makespan = 0;
        assert!(validate_response(&ScheduleResponse::Loop(out)).is_err());
    }

    #[test]
    fn cache_keys_separate_work_relevant_fields_only() {
        let base = || ScheduleRequest::Loop(LoopRequest::default());
        let a = cache_key(&base()).expect("corpus loops are cacheable");
        let b = cache_key(&base()).unwrap();
        assert_eq!(a, b, "identical requests share one key");
        // Every work-relevant field separates keys.
        for (what, req) in [
            (
                "corpus",
                ScheduleRequest::Loop(LoopRequest {
                    source: LoopSource::Corpus("cytron86".into()),
                    ..LoopRequest::default()
                }),
            ),
            (
                "procs",
                ScheduleRequest::Loop(LoopRequest {
                    procs: Some(4),
                    ..LoopRequest::default()
                }),
            ),
            (
                "iters",
                ScheduleRequest::Loop(LoopRequest {
                    iters: 99,
                    ..LoopRequest::default()
                }),
            ),
            (
                "traffic seed",
                ScheduleRequest::Loop(LoopRequest {
                    traffic: TrafficModel { mm: 1, seed: 1 },
                    ..LoopRequest::default()
                }),
            ),
            (
                "scheduler",
                ScheduleRequest::Loop(LoopRequest {
                    scheduler: SchedulerChoice::DoacrossNatural,
                    ..LoopRequest::default()
                }),
            ),
            (
                "transform",
                ScheduleRequest::Loop(LoopRequest {
                    transform: TransformMode::All,
                    ..LoopRequest::default()
                }),
            ),
        ] {
            let other = cache_key(&req).unwrap();
            assert_ne!(a.canon, other.canon, "{what} must separate canons");
            assert_ne!(a.fp, other.fp, "{what} must separate fingerprints");
        }
        // Experiment-cell variants and unreadable files are uncacheable.
        assert!(cache_key(&ScheduleRequest::ContentionCell {
            seed: 0,
            k: 2,
            procs: 2,
            iters: 10,
            engine: EventEngine::Calendar,
        })
        .is_none());
        assert!(cache_key(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgFile("no/such/file.ddg".into()),
            ..LoopRequest::default()
        }))
        .is_none());
    }

    #[test]
    fn file_key_covers_path_and_content() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus/figure7.ddg");
        let text = std::fs::read_to_string(path).unwrap();
        let file = cache_key(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgFile(path.into()),
            ..LoopRequest::default()
        }))
        .unwrap();
        assert!(file.canon.contains(&text), "content is in the canon");
        assert!(file.canon.contains(path), "path is in the canon");
        // Same content supplied inline is a *different* key: the
        // response's name field differs (path vs "inline").
        let inline = cache_key(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgText(text),
            ..LoopRequest::default()
        }))
        .unwrap();
        assert_ne!(file.canon, inline.canon);
    }

    #[test]
    fn transform_off_responses_are_unchanged_by_the_transform_layer() {
        let r = execute(&ScheduleRequest::loop_on_corpus("figure7")).unwrap();
        let ScheduleResponse::Loop(out) = r else {
            panic!("loop response");
        };
        assert_eq!(out.transform, None, "default responses carry no report");
    }

    #[test]
    fn fission_splits_twophase_into_three_summed_pieces() {
        let r = execute(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::Corpus("fissionable/twophase".into()),
            transform: TransformMode::Fission,
            ..LoopRequest::default()
        }))
        .unwrap();
        let ScheduleResponse::Loop(out) = r else {
            panic!("loop response");
        };
        let t = out.transform.expect("transform report present");
        assert_eq!(t.fission, "applied");
        assert_eq!(t.reduce, "off");
        assert_eq!(t.pieces, 3);
        assert_eq!(out.ii, None, "multi-piece schedules have no single II");
        assert!(out.makespan > 0);
    }

    #[test]
    fn reduction_request_reports_mii_collapse() {
        let r = execute(&ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::Corpus("reduction/sum".into()),
            transform: TransformMode::All,
            ..LoopRequest::default()
        }))
        .unwrap();
        let ScheduleResponse::Loop(out) = r else {
            panic!("loop response");
        };
        let t = out.transform.expect("transform report present");
        assert_eq!(t.reduce, "applied");
        assert!((t.mii_before - 2.0).abs() < 1e-6, "{}", t.mii_before);
        assert!(t.mii_after < 1e-6, "{}", t.mii_after);
    }

    #[test]
    fn transform_negatives_answer_with_exact_skip_codes() {
        for (corpus, field, want) in [
            ("fissionable/storage", "fission", "skipped(XS03)"),
            ("reduction/scan", "reduce", "skipped(XR02)"),
            ("reduction/nonassoc", "reduce", "skipped(XR01)"),
        ] {
            let r = execute(&ScheduleRequest::Loop(LoopRequest {
                source: LoopSource::Corpus(corpus.into()),
                transform: TransformMode::All,
                ..LoopRequest::default()
            }))
            .unwrap();
            let ScheduleResponse::Loop(out) = r else {
                panic!("loop response");
            };
            let t = out.transform.expect("transform report present");
            let got = if field == "fission" {
                &t.fission
            } else {
                &t.reduce
            };
            assert_eq!(got, want, "{corpus}");
        }
    }

    #[test]
    fn transform_on_graph_only_sources_is_bad_request() {
        for source in [
            LoopSource::Corpus("cytron86".into()),
            LoopSource::DdgText("node A\n".into()),
        ] {
            let e = execute(&ScheduleRequest::Loop(LoopRequest {
                source,
                transform: TransformMode::All,
                ..LoopRequest::default()
            }))
            .unwrap_err();
            assert!(matches!(&e, ServiceError::BadRequest(_)), "{e:?}");
        }
    }

    #[test]
    fn transform_mode_names_round_trip() {
        for mode in [
            TransformMode::Off,
            TransformMode::Fission,
            TransformMode::Reduce,
            TransformMode::All,
        ] {
            assert_eq!(TransformMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(TransformMode::from_name("maybe"), None);
    }

    #[test]
    fn transient_errors_are_exactly_panics_and_faults() {
        assert!(ServiceError::Panicked("x".into()).is_transient());
        assert!(ServiceError::Faulted("x".into()).is_transient());
        for e in [
            ServiceError::BadRequest("x".into()),
            ServiceError::Sched("x".into()),
            ServiceError::Cancelled,
            ServiceError::Expired,
            ServiceError::ShuttingDown,
            ServiceError::UnknownRequest,
            ServiceError::Timeout,
        ] {
            assert!(!e.is_transient(), "{e:?}");
        }
    }
}
