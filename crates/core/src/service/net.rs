//! std-TCP front-end for the batch scheduling service: `kn serve
//! --listen ADDR` turns the in-process lifecycle semantics into a real
//! server.
//!
//! One thread per connection (plus a writer thread per connection so
//! requests **pipeline**: the reader admits lines as fast as they arrive
//! while the writer collects and answers in line order). The protocol is
//! the line-oriented [`wire`] format: one `key=value`
//! request per line in, one JSON response per line out, ids numbered per
//! connection in line order — exactly the batch (`--requests`) numbering,
//! so a TCP replay of a request file matches its batch-mode golden.
//!
//! Robustness properties (each pinned by `crates/core/tests/net.rs` or
//! the `fault-smoke` CI job):
//!
//! * **Connection cap** — at most [`NetConfig::max_connections`]
//!   concurrent connections; excess connections get one JSON error line
//!   and are closed, they never reach the pool.
//! * **Per-connection read timeout** — an idle connection is closed
//!   after [`NetConfig::read_timeout`]; a half-written line cannot hold
//!   a handler hostage.
//! * **Client disconnect mid-request** — admitted work still runs to
//!   completion (its response is collected and discarded), the handler
//!   exits cleanly, and the listener keeps serving other connections.
//! * **Malformed line flood** — every bad line is answered immediately
//!   with a JSON error and never reaches the pool.
//! * **Graceful shutdown** — [`NetServer::shutdown`] stops accepting,
//!   lets connection handlers finish their in-flight lines, joins every
//!   connection thread, then drains the service per [`DrainPolicy`].
//! * **End-to-end backpressure** — while the pool's queue is past its
//!   brownout high-water mark ([`high_water`](super::ServiceConfig::high_water)) every
//!   connection handler stops reading its socket; unread requests pile
//!   up in the kernel buffers until the *client's* sends block, so
//!   overload pushes back to the source instead of growing the queue.
//! * **Partial-line refusal** — a request line split across reads that
//!   straddles the idle timeout is answered with a JSON `bad request`
//!   error before the connection closes; it is never silently dropped.
//! * **Health probe** — the bare line `health` answers a
//!   [`PoolHealth`](super::PoolHealth) JSON snapshot in sequence
//!   ([`wire::health_json`]) without costing a pool slot.
//! * **Net-layer fault injection** — [`NetConfig::fault_plan`] draws
//!   [`Fault::SlowReader`] / [`Fault::Disconnect`] per response
//!   sequence, so the slow-consumer and server-drop paths are exercised
//!   by the same seeded harness as the pool faults.

use super::faultinject::{Fault, FaultPlan};
use super::{
    wire, DrainPolicy, Service, ServiceError, ShutdownReport, SubmitOptions, SubmitOutcome,
};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Front-end limits; independent of the pool's own [`ServiceConfig`]
/// (queue capacity, retries) which it fronts.
///
/// [`ServiceConfig`]: super::ServiceConfig
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Concurrent connections before new ones are turned away with an
    /// error line.
    pub max_connections: usize,
    /// Idle time after which a connection is closed.
    pub read_timeout: Duration,
    /// Deadline applied to every request admitted over this front-end
    /// (a per-line `deadline_ms=` overrides it).
    pub default_deadline: Option<Duration>,
    /// Net-layer fault injection, keyed on the per-connection response
    /// sequence number: [`Fault::SlowReader`] trickles a response out in
    /// pieces, [`Fault::Disconnect`] drops the connection right after a
    /// response. Pool-level kinds in the plan are ignored here (and vice
    /// versa), so one seeded plan can drive both layers.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            default_deadline: None,
            fault_plan: None,
        }
    }
}

/// A running TCP front-end. Dropping it without calling
/// [`shutdown`](NetServer::shutdown) aborts the accept loop but does not
/// drain the service; call `shutdown` for the graceful sequence.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    svc: Arc<Service>,
}

/// How often blocked reads wake up to check the stop flag and the idle
/// clock. Bounds shutdown latency without shortening client timeouts.
const POLL: Duration = Duration::from_millis(50);

impl NetServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections against `svc`.
    pub fn bind(
        svc: Arc<Service>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_handle = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                accept_loop(&listener, &svc, &stop, &conns, &active, &cfg);
            })
        };
        Ok(Self {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            conns,
            svc,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, join every connection handler
    /// (in-flight lines finish, admitted requests are answered), then
    /// drain the service per `policy` and join its workers.
    pub fn shutdown(mut self, policy: DrainPolicy) -> ShutdownReport {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.conns.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        self.svc.shutdown(policy)
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    svc: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    active: &Arc<AtomicUsize>,
    cfg: &NetConfig,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::Relaxed) {
            return; // the unblocking dummy connection, or a late client
        }
        if active.load(Ordering::Relaxed) >= cfg.max_connections {
            let mut s = stream;
            let _ = s.write_all(
                format!(
                    "{{\"status\": \"error\", \"error\": \"connection limit reached ({} active)\"}}\n",
                    cfg.max_connections
                )
                .as_bytes(),
            );
            continue; // closed on drop, never reached the pool
        }
        active.fetch_add(1, Ordering::Relaxed);
        let svc = Arc::clone(svc);
        let stop = Arc::clone(stop);
        let active = Arc::clone(active);
        let cfg = cfg.clone();
        let handle = std::thread::spawn(move || {
            handle_connection(stream, &svc, &stop, &cfg);
            active.fetch_sub(1, Ordering::Relaxed);
        });
        conns.lock().unwrap().push(handle);
    }
}

/// What the reader hands the writer for each request line, in line order.
enum Slot {
    /// Admitted to the pool under this id.
    Pending(super::RequestId),
    /// Answered without reaching the pool (parse error, admission
    /// closed, brownout refusal).
    Immediate(ServiceError),
    /// A `health` probe line: the writer snapshots the pool when the
    /// slot's turn comes.
    Health,
}

/// The reader-to-writer channel payload: (response sequence number, slot).
type SeqSlot = (u64, Slot);

fn handle_connection(stream: TcpStream, svc: &Arc<Service>, stop: &AtomicBool, cfg: &NetConfig) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = stream.set_read_timeout(Some(POLL));
    let (tx, rx): (Sender<SeqSlot>, Receiver<SeqSlot>) = channel();
    let writer = {
        let svc = Arc::clone(svc);
        let cfg = cfg.clone();
        std::thread::spawn(move || write_responses(write_half, &svc, &rx, &cfg))
    };

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seq = 0u64;
    let mut idle_since = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let before = line.len();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client closed its write half
            Ok(_) => {
                let full = std::mem::take(&mut line);
                if let Some(slot) = admit_line(svc, &full, cfg) {
                    if tx.send((seq, slot)).is_err() {
                        break; // writer gone: client disconnected
                    }
                    seq += 1;
                }
                // End-to-end backpressure: while the pool is past its
                // brownout high-water mark, stop reading this socket.
                // Unread requests accumulate in the kernel buffers until
                // the client's own sends block — overload pushes back to
                // the source instead of growing the queue.
                while svc.over_high_water() && !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(POLL);
                }
                idle_since = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // A partial line may have landed in `line`; keep it and
                // keep waiting, but give up on a silent connection.
                if line.len() > before {
                    idle_since = Instant::now();
                }
                if idle_since.elapsed() >= cfg.read_timeout {
                    // A half-received request line must not vanish
                    // silently: refuse it in sequence, then close.
                    if !line.trim().is_empty() {
                        let refusal = Slot::Immediate(ServiceError::BadRequest(
                            "connection timed out with a partial request line".into(),
                        ));
                        let _ = tx.send((seq, refusal));
                    }
                    break;
                }
            }
            Err(_) => break, // reset / broken pipe
        }
    }
    drop(tx); // writer drains the remaining slots, then exits
    let _ = writer.join();
}

/// Parse one request line and admit it to the pool. `None` = comment or
/// blank line (no response slot).
fn admit_line(svc: &Service, line: &str, cfg: &NetConfig) -> Option<Slot> {
    if wire::is_health_line(line) {
        return Some(Slot::Health);
    }
    match wire::parse_request_line(line) {
        Ok(None) => None,
        Err(e) => Some(Slot::Immediate(ServiceError::BadRequest(e))),
        Ok(Some(parsed)) => {
            let deadline = parsed
                .deadline_ms
                .map(|ms| super::Deadline::after(Duration::from_millis(ms)))
                .or_else(|| cfg.default_deadline.map(super::Deadline::after));
            let opts = SubmitOptions {
                deadline,
                max_attempts: None,
                priority: parsed.priority,
            };
            match svc.submit_opts(parsed.req, opts) {
                SubmitOutcome::Accepted(id) => Some(Slot::Pending(id)),
                // The lint gate fires before the request costs a queue
                // slot; relay its diagnostic to the client verbatim.
                SubmitOutcome::Rejected(super::RejectReason::InvalidDdg { code, message }) => {
                    Some(Slot::Immediate(ServiceError::InvalidDdg { code, message }))
                }
                // Brownout: a Low request past the high-water mark.
                SubmitOutcome::Rejected(super::RejectReason::Overloaded) => {
                    Some(Slot::Immediate(ServiceError::Overloaded))
                }
                // submit_opts blocks on a full queue, so anything else
                // means admission is closed for good.
                _ => Some(Slot::Immediate(ServiceError::ShuttingDown)),
            }
        }
    }
}

/// Collect and answer each admitted line in order. On a write failure
/// (client gone) the remaining responses are still collected — the
/// ledger must not leak ids — just not written.
fn write_responses(mut out: TcpStream, svc: &Service, rx: &Receiver<(u64, Slot)>, cfg: &NetConfig) {
    let mut client_gone = false;
    for (seq, slot) in rx.iter() {
        // Always collect — even with the client gone — so admitted ids
        // never leak in the ledger.
        let json = match slot {
            Slot::Health => wire::health_json(seq, &svc.health()),
            Slot::Immediate(e) => wire::response_json_with(seq, &Err(e), 0),
            Slot::Pending(id) => {
                let c = svc
                    .collect_detailed(&[id], None)
                    .pop()
                    .expect("one id in, one completion out");
                wire::response_json_with(seq, &c.result, c.attempts)
            }
        };
        if client_gone {
            continue;
        }
        // Net-layer faults are keyed on the response sequence, attempt 1
        // (responses are written once); pool kinds in the plan are not
        // drawn here.
        let fault = cfg
            .fault_plan
            .as_ref()
            .and_then(|p| p.fault_for(super::RequestId(seq), 1));
        let payload = format!("{json}\n");
        let wrote = match fault {
            Some(Fault::SlowReader) => write_slowly(&mut out, payload.as_bytes()),
            _ => out.write_all(payload.as_bytes()).and_then(|()| out.flush()),
        };
        if wrote.is_err() {
            client_gone = true;
            continue;
        }
        if matches!(fault, Some(Fault::Disconnect)) {
            // Server-side drop right after a complete response: the
            // remaining slots are still collected above, so nothing
            // leaks — the client just stops hearing answers.
            let _ = out.shutdown(Shutdown::Both);
            client_gone = true;
        }
    }
}

/// A deliberately slow consumer path: the response trickles out in two
/// flushed chunks with a pause between, exercising partial-write
/// handling on the client without stalling the pool (the writer thread
/// owns the delay, the workers never wait on it).
fn write_slowly(out: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    let mid = bytes.len() / 2;
    out.write_all(&bytes[..mid])?;
    out.flush()?;
    std::thread::sleep(Duration::from_millis(2));
    out.write_all(&bytes[mid..])?;
    out.flush()
}
