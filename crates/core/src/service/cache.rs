//! Bounded, sharded response cache for the scheduling service.
//!
//! Keyed by [`CacheKey`]: a 64-bit fingerprint selects the shard and the
//! bucket, and the full canonical string is compared on every lookup, so
//! a colliding digest can never serve the wrong response. Each shard is
//! an independently locked bounded map with logical-tick LRU eviction —
//! admission threads touching different shards never contend, which is
//! what keeps the hot (all-hits) path contention-free.
//!
//! Determinism note: the cache only ever *short-circuits* work whose
//! result is a pure function of the request (the service's determinism
//! guarantee), so a hit is byte-identical to a fresh computation and a
//! stale-free view is not required — any entry present is correct.
//! Eviction order is deterministic for a deterministic operation
//! sequence: ticks are per-shard logical counters, not wall time.

use super::request::CacheKey;
use super::ScheduleResponse;
use std::collections::HashMap;
use std::sync::Mutex;

/// One cached response plus its recency stamp.
struct Entry {
    canon: String,
    resp: ScheduleResponse,
    tick: u64,
}

/// One independently locked shard: fingerprint-keyed buckets (a bucket
/// holds every canon that hashed here — collisions coexist) plus the
/// shard's logical clock.
#[derive(Default)]
struct Shard {
    buckets: HashMap<u64, Vec<Entry>>,
    len: usize,
    tick: u64,
}

/// Bounded, sharded LRU map from request fingerprints to responses.
pub(crate) struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound; total capacity = `shards * shard_capacity`
    /// (rounded up from the requested capacity).
    shard_capacity: usize,
}

impl ResponseCache {
    /// A cache holding at least `capacity` entries (>= 1). Small caches
    /// get a single shard so eviction order is globally LRU — which is
    /// what makes seeded-fill eviction tests exact; large caches spread
    /// across up to 16 shards to keep admission contention-free.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = (capacity / 8).clamp(1, 16);
        let shard_capacity = capacity.div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<Shard> {
        &self.shards[(fp % self.shards.len() as u64) as usize]
    }

    /// Look up `key`, bumping its recency on a hit. The full canon is
    /// compared — a fingerprint collision is a miss, never a wrong
    /// answer.
    pub fn get(&self, key: &CacheKey) -> Option<ScheduleResponse> {
        let mut shard = self.shard(key.fp).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard
            .buckets
            .get_mut(&key.fp)?
            .iter_mut()
            .find(|e| e.canon == key.canon)?;
        entry.tick = tick;
        Some(entry.resp.clone())
    }

    /// Publish a response under `key`, evicting least-recently-used
    /// entries if the shard is over capacity. Returns how many entries
    /// were evicted (0 or 1 in practice). Re-publishing an existing key
    /// refreshes the entry in place.
    pub fn insert(&self, key: &CacheKey, resp: &ScheduleResponse) -> u64 {
        let mut shard = self.shard(key.fp).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let bucket = shard.buckets.entry(key.fp).or_default();
        if let Some(e) = bucket.iter_mut().find(|e| e.canon == key.canon) {
            e.resp = resp.clone();
            e.tick = tick;
            return 0;
        }
        bucket.push(Entry {
            canon: key.canon.clone(),
            resp: resp.clone(),
            tick,
        });
        shard.len += 1;
        let mut evicted = 0u64;
        while shard.len > self.shard_capacity {
            // Evict the entry with the smallest tick (ticks are unique
            // per shard, so the victim is unambiguous).
            let Some((&fp, i)) = shard
                .buckets
                .iter()
                .flat_map(|(fp, b)| b.iter().enumerate().map(move |(i, e)| (fp, i, e.tick)))
                .min_by_key(|&(_, _, t)| t)
                .map(|(fp, i, _)| (fp, i))
            else {
                break;
            };
            let bucket = shard.buckets.get_mut(&fp).expect("victim bucket exists");
            bucket.remove(i);
            if bucket.is_empty() {
                shard.buckets.remove(&fp);
            }
            shard.len -= 1;
            evicted += 1;
        }
        evicted
    }

    /// Total entries currently cached (the `cache_entries` health gauge).
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().len as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::super::request::cache_key;
    use super::super::{LoopRequest, ScheduleRequest};
    use super::*;
    use kn_sim::TrafficModel;

    fn keyed(seed: u64) -> (CacheKey, ScheduleResponse) {
        let req = ScheduleRequest::Loop(LoopRequest {
            traffic: TrafficModel { mm: 3, seed },
            iters: 12,
            ..LoopRequest::default()
        });
        let key = cache_key(&req).unwrap();
        let resp = super::super::execute(&req).unwrap();
        (key, resp)
    }

    #[test]
    fn hit_returns_the_published_response() {
        let cache = ResponseCache::new(4);
        let (key, resp) = keyed(0);
        assert!(cache.get(&key).is_none(), "cold cache misses");
        assert_eq!(cache.insert(&key, &resp), 0);
        assert_eq!(cache.entries(), 1);
        let got = cache.get(&key).expect("published entry hits");
        let (ScheduleResponse::Loop(a), ScheduleResponse::Loop(b)) = (&got, &resp) else {
            panic!("loop responses");
        };
        assert_eq!(a, b, "hit is identical to the published response");
    }

    #[test]
    fn colliding_fingerprint_with_different_canon_is_a_miss() {
        let cache = ResponseCache::new(4);
        let (key, resp) = keyed(0);
        cache.insert(&key, &resp);
        let forged = CacheKey {
            fp: key.fp,
            canon: "something else entirely".into(),
        };
        assert!(
            cache.get(&forged).is_none(),
            "same digest, different canon: never served"
        );
    }

    #[test]
    fn lru_eviction_is_deterministic_and_access_ordered() {
        // Capacity 4 => single shard => global LRU.
        let cache = ResponseCache::new(4);
        let items: Vec<_> = (0..5).map(keyed).collect();
        for (key, resp) in items.iter().take(4) {
            assert_eq!(cache.insert(key, resp), 0);
        }
        // Touch item 0 so item 1 becomes the LRU victim.
        assert!(cache.get(&items[0].0).is_some());
        assert_eq!(cache.insert(&items[4].0, &items[4].1), 1, "one eviction");
        assert_eq!(cache.entries(), 4);
        assert!(cache.get(&items[1].0).is_none(), "item 1 was the victim");
        for (key, _) in [&items[0], &items[2], &items[3], &items[4]] {
            assert!(cache.get(key).is_some(), "survivors still present");
        }
    }

    #[test]
    fn republishing_refreshes_in_place() {
        let cache = ResponseCache::new(2);
        let (key, resp) = keyed(0);
        assert_eq!(cache.insert(&key, &resp), 0);
        assert_eq!(cache.insert(&key, &resp), 0, "no growth, no eviction");
        assert_eq!(cache.entries(), 1);
    }
}
