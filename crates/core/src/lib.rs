#![forbid(unsafe_code)]
//! # kn-core — the public facade
//!
//! One-stop API for the whole reproduction of Kim & Nicolau,
//! *Parallelizing Non-Vectorizable Loops for MIMD machines* (ICPP 1990):
//!
//! * [`parallelize`] — the complete compiler pipeline on any loop DDG:
//!   distance normalization (unwinding), classification, `Cyclic-sched`
//!   pattern scheduling, Flow-in/Flow-out placement, static timing;
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the paper's evaluation (see EXPERIMENTS.md for measured results);
//! * [`service`] — the long-lived batch scheduling service: a persistent
//!   worker pool behind a `ScheduleRequest`/`ScheduleResponse` API, the
//!   single fan-out engine the parallel experiment drivers and
//!   `kn serve` submit to;
//! * re-exports of all subsystem crates (`ddg`, `ir`, `sched`, `doacross`,
//!   `sim`, `runtime`, `workloads`, `metrics`).
//!
//! ## Quickstart
//!
//! ```
//! use kn_core::prelude::*;
//!
//! // The paper's Figure 7 loop.
//! let w = kn_core::workloads::figure7();
//! let machine = MachineConfig::new(2, 2); // 2 PEs, comm bound k = 2
//! let result = kn_core::parallelize(&w.graph, &machine, 100, &Default::default())
//!     .expect("schedulable");
//! // The Cyclic pattern retires 2 iterations every 5 cycles.
//! assert_eq!(result.schedule.cyclic_ii(), Some(2.5));
//! ```

pub use kn_ddg as ddg;
pub use kn_doacross as doacross;
pub use kn_ir as ir;
pub use kn_metrics as metrics;
pub use kn_runtime as runtime;
pub use kn_sched as sched;
pub use kn_sim as sim;
pub use kn_verify as verify;
pub use kn_workloads as workloads;
pub use kn_xform as xform;

pub mod experiments;
pub mod service;

/// Convenient glob-import surface.
pub mod prelude {
    pub use kn_ddg::{classify, Ddg, DdgBuilder, NodeId, SubsetKind};
    pub use kn_doacross::{doacross_schedule, DoacrossOptions};
    pub use kn_metrics::{percentage_parallelism, percentage_parallelism_clamped};
    pub use kn_sched::{
        cyclic_schedule, schedule_loop, CyclicOptions, FullOptions, MachineConfig, PatternOutcome,
        ScheduleTable,
    };
    pub use kn_sim::{
        sequential_time, simulate, simulate_event, simulate_event_with, EventEngine, LinkModel,
        SimOptions, TrafficModel,
    };
}

use kn_ddg::{normalize_distances, Ddg, NodeId};
use kn_sched::{FullOptions, LoopSchedule, MachineConfig, SchedLoopError};

/// Result of [`parallelize`]: the schedule plus the normalization metadata
/// needed to map instances back to the original loop.
#[derive(Clone, Debug)]
pub struct ParallelizedLoop {
    /// The graph actually scheduled (the input, unrolled if distances
    /// exceeded 1).
    pub normalized: Ddg,
    /// Unroll factor applied (1 = none).
    pub unroll_factor: u32,
    /// For each normalized node: `(original node, copy index)`.
    pub origin: Vec<(NodeId, u32)>,
    /// The complete schedule (paper Figure 6 pipeline).
    pub schedule: LoopSchedule,
}

impl ParallelizedLoop {
    /// Map a normalized-graph instance back to the original loop's
    /// `(node, iteration)`.
    pub fn original_instance(&self, inst: kn_ddg::InstanceId) -> (NodeId, u64) {
        let (node, copy) = self.origin[inst.node.index()];
        (
            node,
            inst.iter as u64 * self.unroll_factor as u64 + copy as u64,
        )
    }
}

/// The full pipeline of the paper (Figure 6), preceded by distance
/// normalization (§2.1, citing Munshi & Simons): unwind until all
/// dependence distances are 0/1, classify, schedule the Cyclic core with
/// `Cyclic-sched`, place Flow-in/Flow-out nodes, and time the result.
///
/// `iters` counts iterations of the *original* loop; the normalized loop
/// runs `ceil(iters / unroll_factor)` super-iterations.
pub fn parallelize(
    g: &Ddg,
    m: &MachineConfig,
    iters: u32,
    opts: &FullOptions,
) -> Result<ParallelizedLoop, SchedLoopError> {
    let unrolled = normalize_distances(g);
    let super_iters = iters.div_ceil(unrolled.factor).max(1);
    let schedule = kn_sched::schedule_loop(&unrolled.graph, m, super_iters, opts)?;
    Ok(ParallelizedLoop {
        normalized: unrolled.graph,
        unroll_factor: unrolled.factor,
        origin: unrolled.copy_of,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::DdgBuilder;

    #[test]
    fn parallelize_figure7() {
        let w = kn_workloads::figure7();
        let m = MachineConfig::new(2, 2);
        let r = parallelize(&w.graph, &m, 50, &Default::default()).unwrap();
        assert_eq!(r.unroll_factor, 1);
        assert_eq!(r.schedule.cyclic_ii(), Some(2.5));
        assert_eq!(r.schedule.program.len(), 50 * 5);
    }

    #[test]
    fn parallelize_normalizes_long_distances() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.dep_dist(x, x, 3);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 1);
        let r = parallelize(&g, &m, 9, &Default::default()).unwrap();
        assert_eq!(r.unroll_factor, 3);
        assert_eq!(r.normalized.node_count(), 3);
        // 9 original iterations = 3 super-iterations.
        assert_eq!(r.schedule.iters, 3);
        // Instance mapping round-trips.
        let (orig, iter) = r.original_instance(kn_ddg::InstanceId {
            node: kn_ddg::NodeId(1),
            iter: 2,
        });
        assert_eq!(orig, x);
        assert_eq!(iter, 7); // copy 1 of super-iteration 2 = 2*3 + 1
    }

    #[test]
    fn doc_example_compiles_and_holds() {
        let w = kn_workloads::figure7();
        let machine = MachineConfig::new(2, 2);
        let result = parallelize(&w.graph, &machine, 100, &Default::default()).unwrap();
        assert_eq!(result.schedule.cyclic_ii(), Some(2.5));
    }
}
