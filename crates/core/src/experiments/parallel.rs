//! Deterministic scoped parallel fan-out for the lightweight experiment
//! drivers.
//!
//! Every experiment in this module tree decomposes into independent
//! (workload, machine) cells — a seed's loop scheduled and simulated under
//! some traffic setting never reads another cell's state. The drivers
//! therefore fan cells out across threads and reduce **in input order**
//! (seed order, estimate order, workload order), so a parallel run's
//! report is equal to the sequential run's, element for element. Tests in
//! `table1`/`ablate`/`figures` pin that equality.
//!
//! Two fan-out mechanisms share that contract: the heavy drivers submit
//! typed cells to the persistent [`crate::service`] worker pool, while
//! the helpers here spawn scoped threads per call — the right shape for
//! the small ablations whose closures borrow from the caller.
//!
//! The `rayon` dependency resolves to the workspace's vendored shim (see
//! `vendor/rayon`): same API, `std::thread::scope` underneath, results
//! restored to input order. Swapping in real rayon changes nothing here.

use rayon::prelude::*;

/// Map `f` over `items` in parallel; results come back in input order.
///
/// The unit of work should be coarse (a whole schedule + simulation run),
/// which every caller in this crate satisfies — cells are milliseconds to
/// seconds, far above per-task overhead.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    items.into_par_iter().map(f).collect()
}

/// Fan out over the cross product `a × b` (row-major: `b` varies fastest),
/// returning cells in deterministic row-major order.
pub fn par_product<A, B, R, F>(a: &[A], b: &[B], f: F) -> Vec<R>
where
    A: Clone + Send,
    B: Clone + Send,
    R: Send,
    F: Fn(A, B) -> R + Sync,
{
    let cells: Vec<(A, B)> = a
        .iter()
        .flat_map(|x| b.iter().map(move |y| (x.clone(), y.clone())))
        .collect();
    par_map(cells, |(x, y)| f(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_is_input_ordered() {
        let r = par_map((0..100u64).collect(), |x| x * x);
        assert_eq!(r, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_product_is_row_major() {
        let r = par_product(&[1u32, 2], &[10u32, 20, 30], |a, b| a * 100 + b);
        assert_eq!(r, vec![110, 120, 130, 210, 220, 230]);
    }
}
