//! Ablations over the design choices the paper leaves open.
//!
//! The paper fixes several knobs implicitly (arrival convention via its
//! worked examples, the detector via its proof, the processor pool via
//! "sufficient processors", an exact estimate `k`). These drivers measure
//! how much each choice matters — the engineering questions a user of this
//! library actually faces.

use kn_metrics::{f1, stats, Align, TextTable};
use kn_sched::{
    cyclic_schedule, ArrivalConvention, CyclicOptions, DetectorKind, MachineConfig, ScheduleTable,
};
use kn_sim::{sequential_time, simulate, TrafficModel};
use kn_workloads::{random_cyclic_loop, RandomLoopConfig};

/// Steady II under both arrival conventions, per seed.
#[derive(Clone, Debug)]
pub struct ArrivalAblation {
    pub seeds: Vec<u64>,
    pub consume_at_arrival: Vec<f64>,
    pub after_arrival: Vec<f64>,
}

/// One seed's cell: steady II under both conventions.
fn arrival_cell(seed: u64, k: u32, procs: usize) -> (f64, f64) {
    let cfg = RandomLoopConfig::default();
    let g = random_cyclic_loop(seed, &cfg);
    let ii = |convention| {
        let m = MachineConfig {
            processors: procs,
            comm_upper_bound: k,
            arrival: convention,
        };
        cyclic_schedule(&g, &m, &CyclicOptions::default())
            .unwrap()
            .steady_ii()
    };
    (
        ii(ArrivalConvention::ConsumeAtArrival),
        ii(ArrivalConvention::AfterArrival),
    )
}

fn arrival_reduce(seeds: &[u64], cells: Vec<(f64, f64)>) -> ArrivalAblation {
    let (a, b) = cells.into_iter().unzip();
    ArrivalAblation {
        seeds: seeds.to_vec(),
        consume_at_arrival: a,
        after_arrival: b,
    }
}

/// Compare [`ArrivalConvention::ConsumeAtArrival`] (the paper's) against
/// the stricter `AfterArrival` on random Cyclic loops.
pub fn arrival_ablation(seeds: &[u64], k: u32, procs: usize) -> ArrivalAblation {
    let cells = seeds.iter().map(|&s| arrival_cell(s, k, procs)).collect();
    arrival_reduce(seeds, cells)
}

/// [`arrival_ablation`] with seeds fanned out across threads; equal output.
pub fn arrival_ablation_par(seeds: &[u64], k: u32, procs: usize) -> ArrivalAblation {
    let cells = super::parallel::par_map(seeds.to_vec(), |s| arrival_cell(s, k, procs));
    arrival_reduce(seeds, cells)
}

impl ArrivalAblation {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["seed", "consume-at-arrival II", "after-arrival II"])
            .align(0, Align::Left);
        for (i, &s) in self.seeds.iter().enumerate() {
            t.row(vec![
                s.to_string(),
                format!("{:.3}", self.consume_at_arrival[i]),
                format!("{:.3}", self.after_arrival[i]),
            ]);
        }
        t.row(vec![
            "mean".into(),
            format!("{:.3}", stats(&self.consume_at_arrival).mean),
            format!("{:.3}", stats(&self.after_arrival).mean),
        ]);
        t.render()
    }
}

/// Detector agreement: the state detector and the paper's configuration
/// window must find patterns with the same steady rate; we also record how
/// many iterations each needed to commit.
#[derive(Clone, Debug)]
pub struct DetectorAblation {
    pub seeds: Vec<u64>,
    pub state_ii: Vec<f64>,
    pub window_ii: Vec<f64>,
    pub agreements: usize,
}

/// One seed's cell: steady II under each detector.
fn detector_cell(seed: u64, k: u32, procs: usize) -> (f64, f64) {
    let cfg = RandomLoopConfig::default();
    let m = MachineConfig::new(procs, k);
    let g = random_cyclic_loop(seed, &cfg);
    let s = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
    let w = cyclic_schedule(
        &g,
        &m,
        &CyclicOptions {
            detector: DetectorKind::ConfigurationWindow,
            ..CyclicOptions::default()
        },
    )
    .unwrap();
    (s.steady_ii(), w.steady_ii())
}

fn detector_reduce(seeds: &[u64], cells: Vec<(f64, f64)>) -> DetectorAblation {
    let agreements = cells.iter().filter(|(s, w)| (s - w).abs() < 1e-9).count();
    let (state_ii, window_ii) = cells.into_iter().unzip();
    DetectorAblation {
        seeds: seeds.to_vec(),
        state_ii,
        window_ii,
        agreements,
    }
}

/// Run both detectors over random Cyclic loops.
pub fn detector_ablation(seeds: &[u64], k: u32, procs: usize) -> DetectorAblation {
    let cells = seeds.iter().map(|&s| detector_cell(s, k, procs)).collect();
    detector_reduce(seeds, cells)
}

/// [`detector_ablation`] with seeds fanned out across threads; equal output.
pub fn detector_ablation_par(seeds: &[u64], k: u32, procs: usize) -> DetectorAblation {
    let cells = super::parallel::par_map(seeds.to_vec(), |s| detector_cell(s, k, procs));
    detector_reduce(seeds, cells)
}

/// Robustness to mis-estimated communication cost: schedule with
/// `k_est`, execute with actual cost `k_act` (stable traffic) — the §4
/// theme, swept over estimates instead of fluctuation.
#[derive(Clone, Debug)]
pub struct MisestimationAblation {
    pub k_estimates: Vec<u32>,
    pub k_actual: u32,
    /// Mean Sp across seeds per estimate.
    pub mean_sp: Vec<f64>,
}

/// One `(k_estimate, seed)` cell: schedule with the estimate, execute at
/// the actual cost.
fn misestimation_cell(k_est: u32, seed: u64, k_actual: u32, procs: usize, iters: u32) -> f64 {
    let cfg = RandomLoopConfig::default();
    let m_est = MachineConfig::new(procs, k_est);
    let m_act = MachineConfig::new(procs, k_actual);
    let g = random_cyclic_loop(seed, &cfg);
    let sched = kn_sched::schedule_loop(&g, &m_est, iters, &Default::default()).unwrap();
    // Execute the chosen assignment/order under the *actual* cost.
    let t = simulate(&sched.program, &g, &m_act, &TrafficModel::stable(seed)).unwrap();
    kn_metrics::percentage_parallelism_clamped(sequential_time(&g, iters), t.makespan)
}

fn misestimation_reduce(
    k_estimates: &[u32],
    k_actual: u32,
    nseeds: usize,
    cells: Vec<f64>,
) -> MisestimationAblation {
    // Row-major cells (estimate-major): mean per estimate, in order. With
    // no seeds there are no cells, but every estimate still gets its row
    // (mean of nothing = 0.0, matching `stats(&[])`).
    let mean_sp = if nseeds == 0 {
        vec![stats(&[]).mean; k_estimates.len()]
    } else {
        cells.chunks(nseeds).map(|c| stats(c).mean).collect()
    };
    MisestimationAblation {
        k_estimates: k_estimates.to_vec(),
        k_actual,
        mean_sp,
    }
}

/// For each estimate, schedule all seeds with it and execute with
/// `k_actual`.
pub fn misestimation_ablation(
    seeds: &[u64],
    k_estimates: &[u32],
    k_actual: u32,
    procs: usize,
    iters: u32,
) -> MisestimationAblation {
    let cells = k_estimates
        .iter()
        .flat_map(|&k| seeds.iter().map(move |&s| (k, s)))
        .map(|(k, s)| misestimation_cell(k, s, k_actual, procs, iters))
        .collect();
    misestimation_reduce(k_estimates, k_actual, seeds.len(), cells)
}

/// [`misestimation_ablation`] fanned out over the full `estimate × seed`
/// grid; equal output.
pub fn misestimation_ablation_par(
    seeds: &[u64],
    k_estimates: &[u32],
    k_actual: u32,
    procs: usize,
    iters: u32,
) -> MisestimationAblation {
    let cells = super::parallel::par_product(k_estimates, seeds, |k, s| {
        misestimation_cell(k, s, k_actual, procs, iters)
    });
    misestimation_reduce(k_estimates, k_actual, seeds.len(), cells)
}

impl MisestimationAblation {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["k estimate", "mean Sp (actual k fixed)"]);
        for (i, &k) in self.k_estimates.iter().enumerate() {
            let label = if k == self.k_actual {
                format!("{k} (exact)")
            } else {
                k.to_string()
            };
            t.row(vec![label, f1(self.mean_sp[i])]);
        }
        t.render()
    }
}

/// The paper's core design point, quantified: how much does *factoring
/// communication into scheduling* buy? We schedule each loop twice — once
/// with the true estimate `k` and once pretending communication is free
/// (`k = 0`, i.e. Perfect Pipelining's idealized assumption, paper §1) —
/// then execute both programs on the same machine with the true cost.
#[derive(Clone, Debug)]
pub struct CommAwarenessAblation {
    pub seeds: Vec<u64>,
    /// Sp of the k-aware schedule, per seed.
    pub aware: Vec<f64>,
    /// Sp of the k-oblivious (zero-comm) schedule executed at true k.
    pub oblivious: Vec<f64>,
}

impl CommAwarenessAblation {
    pub fn render(&self) -> String {
        let mut t =
            TextTable::new(&["seed", "comm-aware Sp", "comm-oblivious Sp"]).align(0, Align::Left);
        for (i, &s) in self.seeds.iter().enumerate() {
            t.row(vec![
                s.to_string(),
                f1(self.aware[i]),
                f1(self.oblivious[i]),
            ]);
        }
        t.row(vec![
            "mean".into(),
            f1(stats(&self.aware).mean),
            f1(stats(&self.oblivious).mean),
        ]);
        t.render()
    }
}

/// One seed's cell: `(comm-aware Sp, comm-oblivious Sp)`.
fn comm_awareness_cell(seed: u64, k_actual: u32, procs: usize, iters: u32) -> (f64, f64) {
    let cfg = RandomLoopConfig::default();
    let m_true = MachineConfig::new(procs, k_actual);
    let m_zero = MachineConfig::new(procs, 0);
    let g = random_cyclic_loop(seed, &cfg);
    let s = sequential_time(&g, iters);
    let sp = |m_est: &MachineConfig| {
        let sched = kn_sched::schedule_loop(&g, m_est, iters, &Default::default()).unwrap();
        let t = simulate(&sched.program, &g, &m_true, &TrafficModel::stable(seed)).unwrap();
        kn_metrics::percentage_parallelism_clamped(s, t.makespan)
    };
    (sp(&m_true), sp(&m_zero))
}

fn comm_awareness_reduce(seeds: &[u64], cells: Vec<(f64, f64)>) -> CommAwarenessAblation {
    let (aware, oblivious) = cells.into_iter().unzip();
    CommAwarenessAblation {
        seeds: seeds.to_vec(),
        aware,
        oblivious,
    }
}

/// Run the communication-awareness ablation on random Cyclic loops.
pub fn comm_awareness_ablation(
    seeds: &[u64],
    k_actual: u32,
    procs: usize,
    iters: u32,
) -> CommAwarenessAblation {
    let cells = seeds
        .iter()
        .map(|&s| comm_awareness_cell(s, k_actual, procs, iters))
        .collect();
    comm_awareness_reduce(seeds, cells)
}

/// [`comm_awareness_ablation`] with seeds fanned out across threads; equal
/// output.
pub fn comm_awareness_ablation_par(
    seeds: &[u64],
    k_actual: u32,
    procs: usize,
    iters: u32,
) -> CommAwarenessAblation {
    let cells = super::parallel::par_map(seeds.to_vec(), |s| {
        comm_awareness_cell(s, k_actual, procs, iters)
    });
    comm_awareness_reduce(seeds, cells)
}

/// Beyond the paper: how both techniques degrade when the interconnect is
/// *not* fully overlapped — each directed processor pair carries one
/// message at a time (`kn_sim::LinkModel::SingleMessage`).
#[derive(Clone, Debug)]
pub struct ContentionAblation {
    pub seeds: Vec<u64>,
    pub ours_free: Vec<f64>,
    pub ours_contended: Vec<f64>,
    pub doacross_free: Vec<f64>,
    pub doacross_contended: Vec<f64>,
}

impl ContentionAblation {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "seed",
            "ours (overlapped)",
            "ours (1-msg links)",
            "doacross (overlapped)",
            "doacross (1-msg links)",
        ])
        .align(0, Align::Left);
        for (i, &s) in self.seeds.iter().enumerate() {
            t.row(vec![
                s.to_string(),
                f1(self.ours_free[i]),
                f1(self.ours_contended[i]),
                f1(self.doacross_free[i]),
                f1(self.doacross_contended[i]),
            ]);
        }
        t.row(vec![
            "mean".into(),
            f1(stats(&self.ours_free).mean),
            f1(stats(&self.ours_contended).mean),
            f1(stats(&self.doacross_free).mean),
            f1(stats(&self.doacross_contended).mean),
        ]);
        t.render()
    }
}

/// One seed's cell: `(ours free, ours contended, doacross free, doacross
/// contended)` percentage parallelism, timed by the chosen event-queue
/// engine. The unit of work the parallel driver submits to the service
/// ([`ScheduleRequest::ContentionCell`](crate::service::ScheduleRequest)).
pub(crate) fn contention_cell(
    seed: u64,
    k: u32,
    procs: usize,
    iters: u32,
    engine: kn_sim::EventEngine,
) -> (f64, f64, f64, f64) {
    use kn_sim::{simulate_event_with, LinkModel};
    let cfg = RandomLoopConfig::default();
    let m = MachineConfig::new(procs, k);
    let g = random_cyclic_loop(seed, &cfg);
    let s = sequential_time(&g, iters);
    let ours = kn_sched::schedule_loop(&g, &m, iters, &Default::default()).unwrap();
    let da = kn_doacross::doacross_schedule(&g, &m, iters, &Default::default()).unwrap();
    let t = TrafficModel::stable(seed);
    let run = |prog, link| {
        let mk = simulate_event_with(prog, &g, &m, &t, link, engine)
            .unwrap()
            .makespan;
        kn_metrics::percentage_parallelism_clamped(s, mk)
    };
    (
        run(&ours.program, LinkModel::Unlimited),
        run(&ours.program, LinkModel::SingleMessage),
        run(&da.program, LinkModel::Unlimited),
        run(&da.program, LinkModel::SingleMessage),
    )
}

fn contention_reduce(seeds: &[u64], cells: Vec<(f64, f64, f64, f64)>) -> ContentionAblation {
    let mut r = ContentionAblation {
        seeds: seeds.to_vec(),
        ours_free: Vec::with_capacity(cells.len()),
        ours_contended: Vec::with_capacity(cells.len()),
        doacross_free: Vec::with_capacity(cells.len()),
        doacross_contended: Vec::with_capacity(cells.len()),
    };
    for (of, oc, df, dc) in cells {
        r.ours_free.push(of);
        r.ours_contended.push(oc);
        r.doacross_free.push(df);
        r.doacross_contended.push(dc);
    }
    r
}

/// Run the contention ablation with the default (calendar) event engine.
pub fn contention_ablation(seeds: &[u64], k: u32, procs: usize, iters: u32) -> ContentionAblation {
    contention_ablation_with(seeds, k, procs, iters, kn_sim::EventEngine::default())
}

/// [`contention_ablation`] with an explicit event-queue engine (the two
/// engines are tested identical; the knob exists for benchmarking and
/// cross-checking).
pub fn contention_ablation_with(
    seeds: &[u64],
    k: u32,
    procs: usize,
    iters: u32,
    engine: kn_sim::EventEngine,
) -> ContentionAblation {
    let cells = seeds
        .iter()
        .map(|&s| contention_cell(s, k, procs, iters, engine))
        .collect();
    contention_reduce(seeds, cells)
}

/// [`contention_ablation`] with seeds fanned out across threads; equal
/// output.
pub fn contention_ablation_par(
    seeds: &[u64],
    k: u32,
    procs: usize,
    iters: u32,
) -> ContentionAblation {
    contention_ablation_par_with(seeds, k, procs, iters, kn_sim::EventEngine::default())
}

/// [`contention_ablation_with`] with the per-seed cells submitted as one
/// batch to the global batch scheduling service; request ids preserve
/// seed order, so the reduction (and therefore the report) is equal to
/// the sequential driver's.
pub fn contention_ablation_par_with(
    seeds: &[u64],
    k: u32,
    procs: usize,
    iters: u32,
    engine: kn_sim::EventEngine,
) -> ContentionAblation {
    use crate::service::{ScheduleRequest, ScheduleResponse};
    let svc = crate::service::global();
    let ids = svc.submit_batch(
        seeds
            .iter()
            .map(|&seed| ScheduleRequest::ContentionCell {
                seed,
                k,
                procs,
                iters,
                engine,
            })
            .collect(),
    );
    let cells = svc
        .collect(&ids)
        .into_iter()
        .map(|(id, r)| match r {
            Ok(ScheduleResponse::Contention {
                ours_free,
                ours_contended,
                doacross_free,
                doacross_contended,
            }) => (ours_free, ours_contended, doacross_free, doacross_contended),
            Ok(other) => unreachable!("contention cell answered with {other:?}"),
            Err(e) => panic!("contention cell {id} failed: {e}"),
        })
        .collect();
    contention_reduce(seeds, cells)
}

/// Processor-count sweep: steady II as the pool grows (the "sufficient
/// processors" assumption quantified).
pub fn processor_sweep(seed: u64, k: u32, procs: &[usize]) -> Vec<(usize, f64)> {
    let cfg = RandomLoopConfig::default();
    let g = random_cyclic_loop(seed, &cfg);
    procs
        .iter()
        .map(|&p| {
            let m = MachineConfig::new(p, k);
            let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
            (p, out.steady_ii())
        })
        .collect()
}

/// Sanity driver used by tests: schedule + validate one random loop end
/// to end under every ablation axis.
pub fn validate_axes(seed: u64) {
    let cfg = RandomLoopConfig::default();
    let g = random_cyclic_loop(seed, &cfg);
    for arrival in [
        ArrivalConvention::ConsumeAtArrival,
        ArrivalConvention::AfterArrival,
    ] {
        for detector in [
            DetectorKind::SchedulerState,
            DetectorKind::ConfigurationWindow,
        ] {
            let m = MachineConfig {
                processors: 8,
                comm_upper_bound: 3,
                arrival,
            };
            let out = cyclic_schedule(
                &g,
                &m,
                &CyclicOptions {
                    detector,
                    ..CyclicOptions::default()
                },
            )
            .unwrap();
            let placements = out.instantiate(20);
            ScheduleTable::new(placements)
                .validate(&g, &m)
                .expect("every axis yields a valid schedule");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_convention_changes_little_but_never_invalid() {
        let r = arrival_ablation(&[1, 2, 3], 3, 8);
        // AfterArrival adds one cycle per remote hop: II can only grow.
        for i in 0..r.seeds.len() {
            assert!(r.after_arrival[i] + 1e-9 >= r.consume_at_arrival[i]);
        }
        assert!(r.render().contains("mean"));
    }

    #[test]
    fn detectors_agree_on_rate() {
        let r = detector_ablation(&[1, 2, 3, 4], 3, 8);
        assert_eq!(
            r.agreements, 4,
            "state {:?} vs window {:?}",
            r.state_ii, r.window_ii
        );
    }

    #[test]
    fn misestimation_is_tolerable() {
        let r = misestimation_ablation(&[1, 2, 3], &[1, 3, 6], 3, 8, 40);
        // Scheduling with the exact k is at least as good as a gross
        // underestimate executed at the true cost... usually. At minimum
        // all entries are finite and the exact estimate is positive.
        assert_eq!(r.mean_sp.len(), 3);
        assert!(r.mean_sp[1] > 0.0, "exact estimate achieves parallelism");
        assert!(r.render().contains("(exact)"));
    }

    #[test]
    fn more_processors_never_hurt_much() {
        let sweep = processor_sweep(5, 3, &[1, 2, 4, 8]);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(last <= first + 1e-9, "8 procs no slower than 1: {sweep:?}");
    }

    #[test]
    fn all_axes_valid() {
        validate_axes(11);
    }

    #[test]
    fn comm_awareness_pays_off_on_average() {
        let r = comm_awareness_ablation(&[1, 2, 3, 4, 5, 6], 3, 8, 60);
        let aware = kn_metrics::stats(&r.aware).mean;
        let oblivious = kn_metrics::stats(&r.oblivious).mean;
        assert!(
            aware >= oblivious,
            "factoring k into scheduling must not hurt on average: {aware} vs {oblivious}"
        );
        assert!(r.render().contains("mean"));
    }

    #[test]
    fn misestimation_empty_seeds_still_renders() {
        // One row per estimate even with no seeds (regression: the chunked
        // reduce used to drop all rows and render() then panicked).
        for r in [
            misestimation_ablation(&[], &[1, 3, 6], 3, 8, 40),
            misestimation_ablation_par(&[], &[1, 3, 6], 3, 8, 40),
        ] {
            assert_eq!(r.mean_sp, vec![0.0; 3]);
            assert!(r.render().contains("(exact)"));
        }
    }

    #[test]
    fn parallel_ablations_equal_sequential() {
        let seeds = [1u64, 2, 3];
        let a = arrival_ablation(&seeds, 3, 8);
        let ap = arrival_ablation_par(&seeds, 3, 8);
        assert_eq!(a.consume_at_arrival, ap.consume_at_arrival);
        assert_eq!(a.after_arrival, ap.after_arrival);

        let d = detector_ablation(&seeds, 3, 8);
        let dp = detector_ablation_par(&seeds, 3, 8);
        assert_eq!(d.state_ii, dp.state_ii);
        assert_eq!(d.window_ii, dp.window_ii);
        assert_eq!(d.agreements, dp.agreements);

        let m = misestimation_ablation(&seeds, &[1, 3, 6], 3, 8, 40);
        let mp = misestimation_ablation_par(&seeds, &[1, 3, 6], 3, 8, 40);
        assert_eq!(m.mean_sp, mp.mean_sp);

        let c = comm_awareness_ablation(&seeds, 3, 8, 40);
        let cp = comm_awareness_ablation_par(&seeds, 3, 8, 40);
        assert_eq!(c.aware, cp.aware);
        assert_eq!(c.oblivious, cp.oblivious);

        let t = contention_ablation(&seeds, 3, 8, 30);
        let tp = contention_ablation_par(&seeds, 3, 8, 30);
        assert_eq!(t.ours_free, tp.ours_free);
        assert_eq!(t.ours_contended, tp.ours_contended);
        assert_eq!(t.doacross_free, tp.doacross_free);
        assert_eq!(t.doacross_contended, tp.doacross_contended);
    }

    #[test]
    fn contention_ablation_engine_choice_is_invisible() {
        use kn_sim::EventEngine;
        let seeds = [1u64, 2, 3];
        let h = contention_ablation_with(&seeds, 3, 8, 30, EventEngine::Heap);
        let c = contention_ablation_with(&seeds, 3, 8, 30, EventEngine::Calendar);
        assert_eq!(h.ours_free, c.ours_free);
        assert_eq!(h.ours_contended, c.ours_contended);
        assert_eq!(h.doacross_free, c.doacross_free);
        assert_eq!(h.doacross_contended, c.doacross_contended);
        let cp = contention_ablation_par_with(&seeds, 3, 8, 30, EventEngine::Calendar);
        assert_eq!(c.ours_contended, cp.ours_contended);
    }

    #[test]
    fn contention_never_helps() {
        let r = contention_ablation(&[1, 2, 3], 3, 8, 40);
        for i in 0..r.seeds.len() {
            assert!(r.ours_contended[i] <= r.ours_free[i] + 1e-9);
            assert!(r.doacross_contended[i] <= r.doacross_free[i] + 1e-9);
        }
        assert!(r.render().contains("1-msg links"));
    }
}
