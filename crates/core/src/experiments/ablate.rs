//! Ablations over the design choices the paper leaves open.
//!
//! The paper fixes several knobs implicitly (arrival convention via its
//! worked examples, the detector via its proof, the processor pool via
//! "sufficient processors", an exact estimate `k`). These drivers measure
//! how much each choice matters — the engineering questions a user of this
//! library actually faces.

use kn_metrics::{f1, stats, Align, TextTable};
use kn_sched::{
    cyclic_schedule, ArrivalConvention, CyclicOptions, DetectorKind, MachineConfig,
    ScheduleTable,
};
use kn_sim::{sequential_time, simulate, TrafficModel};
use kn_workloads::{random_cyclic_loop, RandomLoopConfig};

/// Steady II under both arrival conventions, per seed.
#[derive(Clone, Debug)]
pub struct ArrivalAblation {
    pub seeds: Vec<u64>,
    pub consume_at_arrival: Vec<f64>,
    pub after_arrival: Vec<f64>,
}

/// Compare [`ArrivalConvention::ConsumeAtArrival`] (the paper's) against
/// the stricter `AfterArrival` on random Cyclic loops.
pub fn arrival_ablation(seeds: &[u64], k: u32, procs: usize) -> ArrivalAblation {
    let cfg = RandomLoopConfig::default();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for &seed in seeds {
        let g = random_cyclic_loop(seed, &cfg);
        for (convention, out) in [
            (ArrivalConvention::ConsumeAtArrival, &mut a),
            (ArrivalConvention::AfterArrival, &mut b),
        ] {
            let m = MachineConfig { processors: procs, comm_upper_bound: k, arrival: convention };
            let outcome = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
            out.push(outcome.steady_ii());
        }
    }
    ArrivalAblation { seeds: seeds.to_vec(), consume_at_arrival: a, after_arrival: b }
}

impl ArrivalAblation {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["seed", "consume-at-arrival II", "after-arrival II"])
            .align(0, Align::Left);
        for (i, &s) in self.seeds.iter().enumerate() {
            t.row(vec![
                s.to_string(),
                format!("{:.3}", self.consume_at_arrival[i]),
                format!("{:.3}", self.after_arrival[i]),
            ]);
        }
        t.row(vec![
            "mean".into(),
            format!("{:.3}", stats(&self.consume_at_arrival).mean),
            format!("{:.3}", stats(&self.after_arrival).mean),
        ]);
        t.render()
    }
}

/// Detector agreement: the state detector and the paper's configuration
/// window must find patterns with the same steady rate; we also record how
/// many iterations each needed to commit.
#[derive(Clone, Debug)]
pub struct DetectorAblation {
    pub seeds: Vec<u64>,
    pub state_ii: Vec<f64>,
    pub window_ii: Vec<f64>,
    pub agreements: usize,
}

/// Run both detectors over random Cyclic loops.
pub fn detector_ablation(seeds: &[u64], k: u32, procs: usize) -> DetectorAblation {
    let cfg = RandomLoopConfig::default();
    let m = MachineConfig::new(procs, k);
    let mut state_ii = Vec::new();
    let mut window_ii = Vec::new();
    let mut agreements = 0;
    for &seed in seeds {
        let g = random_cyclic_loop(seed, &cfg);
        let s = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let w = cyclic_schedule(
            &g,
            &m,
            &CyclicOptions {
                detector: DetectorKind::ConfigurationWindow,
                ..CyclicOptions::default()
            },
        )
        .unwrap();
        if (s.steady_ii() - w.steady_ii()).abs() < 1e-9 {
            agreements += 1;
        }
        state_ii.push(s.steady_ii());
        window_ii.push(w.steady_ii());
    }
    DetectorAblation { seeds: seeds.to_vec(), state_ii, window_ii, agreements }
}

/// Robustness to mis-estimated communication cost: schedule with
/// `k_est`, execute with actual cost `k_act` (stable traffic) — the §4
/// theme, swept over estimates instead of fluctuation.
#[derive(Clone, Debug)]
pub struct MisestimationAblation {
    pub k_estimates: Vec<u32>,
    pub k_actual: u32,
    /// Mean Sp across seeds per estimate.
    pub mean_sp: Vec<f64>,
}

/// For each estimate, schedule all seeds with it and execute with
/// `k_actual`.
pub fn misestimation_ablation(
    seeds: &[u64],
    k_estimates: &[u32],
    k_actual: u32,
    procs: usize,
    iters: u32,
) -> MisestimationAblation {
    let cfg = RandomLoopConfig::default();
    let m_act = MachineConfig::new(procs, k_actual);
    let mut mean_sp = Vec::new();
    for &k_est in k_estimates {
        let m_est = MachineConfig::new(procs, k_est);
        let mut sps = Vec::new();
        for &seed in seeds {
            let g = random_cyclic_loop(seed, &cfg);
            let sched = kn_sched::schedule_loop(&g, &m_est, iters, &Default::default()).unwrap();
            // Execute the chosen assignment/order under the *actual* cost.
            let t = simulate(&sched.program, &g, &m_act, &TrafficModel::stable(seed)).unwrap();
            sps.push(kn_metrics::percentage_parallelism_clamped(
                sequential_time(&g, iters),
                t.makespan,
            ));
        }
        mean_sp.push(stats(&sps).mean);
    }
    MisestimationAblation { k_estimates: k_estimates.to_vec(), k_actual, mean_sp }
}

impl MisestimationAblation {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["k estimate", "mean Sp (actual k fixed)"]);
        for (i, &k) in self.k_estimates.iter().enumerate() {
            let label = if k == self.k_actual { format!("{k} (exact)") } else { k.to_string() };
            t.row(vec![label, f1(self.mean_sp[i])]);
        }
        t.render()
    }
}

/// The paper's core design point, quantified: how much does *factoring
/// communication into scheduling* buy? We schedule each loop twice — once
/// with the true estimate `k` and once pretending communication is free
/// (`k = 0`, i.e. Perfect Pipelining's idealized assumption, paper §1) —
/// then execute both programs on the same machine with the true cost.
#[derive(Clone, Debug)]
pub struct CommAwarenessAblation {
    pub seeds: Vec<u64>,
    /// Sp of the k-aware schedule, per seed.
    pub aware: Vec<f64>,
    /// Sp of the k-oblivious (zero-comm) schedule executed at true k.
    pub oblivious: Vec<f64>,
}

impl CommAwarenessAblation {
    pub fn render(&self) -> String {
        let mut t =
            TextTable::new(&["seed", "comm-aware Sp", "comm-oblivious Sp"]).align(0, Align::Left);
        for (i, &s) in self.seeds.iter().enumerate() {
            t.row(vec![s.to_string(), f1(self.aware[i]), f1(self.oblivious[i])]);
        }
        t.row(vec![
            "mean".into(),
            f1(stats(&self.aware).mean),
            f1(stats(&self.oblivious).mean),
        ]);
        t.render()
    }
}

/// Run the communication-awareness ablation on random Cyclic loops.
pub fn comm_awareness_ablation(
    seeds: &[u64],
    k_actual: u32,
    procs: usize,
    iters: u32,
) -> CommAwarenessAblation {
    let cfg = RandomLoopConfig::default();
    let m_true = MachineConfig::new(procs, k_actual);
    let m_zero = MachineConfig::new(procs, 0);
    let mut aware = Vec::new();
    let mut oblivious = Vec::new();
    for &seed in seeds {
        let g = random_cyclic_loop(seed, &cfg);
        let s = sequential_time(&g, iters);
        for (m_est, out) in [(&m_true, &mut aware), (&m_zero, &mut oblivious)] {
            let sched = kn_sched::schedule_loop(&g, m_est, iters, &Default::default()).unwrap();
            let t = simulate(&sched.program, &g, &m_true, &TrafficModel::stable(seed)).unwrap();
            out.push(kn_metrics::percentage_parallelism_clamped(s, t.makespan));
        }
    }
    CommAwarenessAblation { seeds: seeds.to_vec(), aware, oblivious }
}

/// Beyond the paper: how both techniques degrade when the interconnect is
/// *not* fully overlapped — each directed processor pair carries one
/// message at a time (`kn_sim::LinkModel::SingleMessage`).
#[derive(Clone, Debug)]
pub struct ContentionAblation {
    pub seeds: Vec<u64>,
    pub ours_free: Vec<f64>,
    pub ours_contended: Vec<f64>,
    pub doacross_free: Vec<f64>,
    pub doacross_contended: Vec<f64>,
}

impl ContentionAblation {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "seed",
            "ours (overlapped)",
            "ours (1-msg links)",
            "doacross (overlapped)",
            "doacross (1-msg links)",
        ])
        .align(0, Align::Left);
        for (i, &s) in self.seeds.iter().enumerate() {
            t.row(vec![
                s.to_string(),
                f1(self.ours_free[i]),
                f1(self.ours_contended[i]),
                f1(self.doacross_free[i]),
                f1(self.doacross_contended[i]),
            ]);
        }
        t.row(vec![
            "mean".into(),
            f1(stats(&self.ours_free).mean),
            f1(stats(&self.ours_contended).mean),
            f1(stats(&self.doacross_free).mean),
            f1(stats(&self.doacross_contended).mean),
        ]);
        t.render()
    }
}

/// Run the contention ablation.
pub fn contention_ablation(
    seeds: &[u64],
    k: u32,
    procs: usize,
    iters: u32,
) -> ContentionAblation {
    use kn_sim::{simulate_event, LinkModel};
    let cfg = RandomLoopConfig::default();
    let m = MachineConfig::new(procs, k);
    let mut r = ContentionAblation {
        seeds: seeds.to_vec(),
        ours_free: Vec::new(),
        ours_contended: Vec::new(),
        doacross_free: Vec::new(),
        doacross_contended: Vec::new(),
    };
    for &seed in seeds {
        let g = random_cyclic_loop(seed, &cfg);
        let s = sequential_time(&g, iters);
        let ours = kn_sched::schedule_loop(&g, &m, iters, &Default::default()).unwrap();
        let da = kn_doacross::doacross_schedule(&g, &m, iters, &Default::default()).unwrap();
        let t = TrafficModel::stable(seed);
        let sp = |mk: u64| kn_metrics::percentage_parallelism_clamped(s, mk);
        r.ours_free.push(sp(
            simulate_event(&ours.program, &g, &m, &t, LinkModel::Unlimited).unwrap().makespan,
        ));
        r.ours_contended.push(sp(
            simulate_event(&ours.program, &g, &m, &t, LinkModel::SingleMessage)
                .unwrap()
                .makespan,
        ));
        r.doacross_free.push(sp(
            simulate_event(&da.program, &g, &m, &t, LinkModel::Unlimited).unwrap().makespan,
        ));
        r.doacross_contended.push(sp(
            simulate_event(&da.program, &g, &m, &t, LinkModel::SingleMessage)
                .unwrap()
                .makespan,
        ));
    }
    r
}

/// Processor-count sweep: steady II as the pool grows (the "sufficient
/// processors" assumption quantified).
pub fn processor_sweep(seed: u64, k: u32, procs: &[usize]) -> Vec<(usize, f64)> {
    let cfg = RandomLoopConfig::default();
    let g = random_cyclic_loop(seed, &cfg);
    procs
        .iter()
        .map(|&p| {
            let m = MachineConfig::new(p, k);
            let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
            (p, out.steady_ii())
        })
        .collect()
}

/// Sanity driver used by tests: schedule + validate one random loop end
/// to end under every ablation axis.
pub fn validate_axes(seed: u64) {
    let cfg = RandomLoopConfig::default();
    let g = random_cyclic_loop(seed, &cfg);
    for arrival in [ArrivalConvention::ConsumeAtArrival, ArrivalConvention::AfterArrival] {
        for detector in [DetectorKind::SchedulerState, DetectorKind::ConfigurationWindow] {
            let m = MachineConfig { processors: 8, comm_upper_bound: 3, arrival };
            let out = cyclic_schedule(
                &g,
                &m,
                &CyclicOptions { detector, ..CyclicOptions::default() },
            )
            .unwrap();
            let placements = out.instantiate(20);
            ScheduleTable::new(placements)
                .validate(&g, &m)
                .expect("every axis yields a valid schedule");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_convention_changes_little_but_never_invalid() {
        let r = arrival_ablation(&[1, 2, 3], 3, 8);
        // AfterArrival adds one cycle per remote hop: II can only grow.
        for i in 0..r.seeds.len() {
            assert!(r.after_arrival[i] + 1e-9 >= r.consume_at_arrival[i]);
        }
        assert!(r.render().contains("mean"));
    }

    #[test]
    fn detectors_agree_on_rate() {
        let r = detector_ablation(&[1, 2, 3, 4], 3, 8);
        assert_eq!(r.agreements, 4, "state {:?} vs window {:?}", r.state_ii, r.window_ii);
    }

    #[test]
    fn misestimation_is_tolerable() {
        let r = misestimation_ablation(&[1, 2, 3], &[1, 3, 6], 3, 8, 40);
        // Scheduling with the exact k is at least as good as a gross
        // underestimate executed at the true cost... usually. At minimum
        // all entries are finite and the exact estimate is positive.
        assert_eq!(r.mean_sp.len(), 3);
        assert!(r.mean_sp[1] > 0.0, "exact estimate achieves parallelism");
        assert!(r.render().contains("(exact)"));
    }

    #[test]
    fn more_processors_never_hurt_much() {
        let sweep = processor_sweep(5, 3, &[1, 2, 4, 8]);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(last <= first + 1e-9, "8 procs no slower than 1: {sweep:?}");
    }

    #[test]
    fn all_axes_valid() {
        validate_axes(11);
    }

    #[test]
    fn comm_awareness_pays_off_on_average() {
        let r = comm_awareness_ablation(&[1, 2, 3, 4, 5, 6], 3, 8, 60);
        let aware = kn_metrics::stats(&r.aware).mean;
        let oblivious = kn_metrics::stats(&r.oblivious).mean;
        assert!(
            aware >= oblivious,
            "factoring k into scheduling must not hurt on average: {aware} vs {oblivious}"
        );
        assert!(r.render().contains("mean"));
    }

    #[test]
    fn contention_never_helps() {
        let r = contention_ablation(&[1, 2, 3], 3, 8, 40);
        for i in 0..r.seeds.len() {
            assert!(r.ours_contended[i] <= r.ours_free[i] + 1e-9);
            assert!(r.doacross_contended[i] <= r.doacross_free[i] + 1e-9);
        }
        assert!(r.render().contains("1-msg links"));
    }
}
