//! Per-figure comparison driver: our scheduler vs DOACROSS on one
//! workload, the measurement behind the paper's §3 percentage-parallelism
//! claims (Figures 7–12).

use kn_ddg::classify;
use kn_doacross::{doacross_schedule, DoacrossOptions, Reorder};
use kn_metrics::percentage_parallelism_clamped;
use kn_sched::{MachineConfig, PatternOutcome, ScheduleTable};
use kn_sim::{sequential_time, SimOptions, TrafficModel};
use kn_workloads::Workload;

/// Everything the paper reports (or draws) for one example loop.
#[derive(Clone, Debug)]
pub struct FigureReport {
    pub name: String,
    pub iters: u32,
    /// Sequential execution time (`s`).
    pub seq_time: u64,
    /// Our schedule's execution time (simulated, stable traffic).
    pub ours_time: u64,
    /// DOACROSS with the natural body order.
    pub doacross_natural_time: u64,
    /// DOACROSS with the best (reordered) body order, paper Fig. 8(b).
    pub doacross_best_time: u64,
    /// Percentage parallelism, ours.
    pub ours_sp: f64,
    /// Percentage parallelism, DOACROSS with the natural statement order —
    /// the baseline the paper's §3 percentages use.
    pub doacross_sp: f64,
    /// Percentage parallelism, DOACROSS with the best reordering (paper
    /// Fig. 8(b) applies this only as a side analysis).
    pub doacross_best_sp: f64,
    /// Steady-state cycles/iteration of the Cyclic core, if a pattern was
    /// found.
    pub ours_ii: Option<f64>,
    /// DOACROSS compile-time delay (natural order).
    pub doacross_delay: u64,
    pub processors_ours: usize,
    pub processors_doacross: usize,
    /// Pattern summary string ("d iterations every t cycles on q PEs").
    pub pattern: String,
    /// The first cycles of the schedule, rendered like the paper's grids.
    pub grid: String,
    /// The `Cyclic-sched` enumeration order (paper Figs. 3(b)/7(c)).
    pub enumeration: String,
    /// The transformed parallel loop (paper Figs. 7(e)/10), if a single
    /// pattern governs the Cyclic core.
    pub code: Option<String>,
}

/// Run the full comparison on one workload under the default execution
/// model (fully overlapped links — the paper's).
pub fn figure_report(w: &Workload, iters: u32) -> FigureReport {
    figure_report_with(w, iters, &SimOptions::default())
}

/// [`figure_report`] with an explicit execution model: `sim` selects the
/// link capacity and, for contended links, the event-queue engine that
/// times "ours" (the DOACROSS columns stay compile-time makespans).
pub fn figure_report_with(w: &Workload, iters: u32, sim: &SimOptions) -> FigureReport {
    let m = MachineConfig::new(w.procs, w.k);
    let ours = kn_sched::schedule_loop(&w.graph, &m, iters, &Default::default())
        .expect("workload schedulable");
    let seq_time = sequential_time(&w.graph, iters);
    let ours_sim = sim
        .run(&ours.program, &w.graph, &m, &TrafficModel::stable(0))
        .expect("program executes");

    // DOACROSS gets the same processor budget our schedule actually used
    // (at least 2 so pipelining is possible at all).
    let da_procs = ours.processors_used().max(2);
    let m_da = MachineConfig::new(da_procs, w.k);
    let natural = doacross_schedule(
        &w.graph,
        &m_da,
        iters,
        &DoacrossOptions {
            reorder: Reorder::Natural,
            ..Default::default()
        },
    )
    .expect("doacross schedulable");
    let best = doacross_schedule(
        &w.graph,
        &m_da,
        iters,
        &DoacrossOptions {
            reorder: Reorder::Best {
                exhaustive_cap: 5040,
            },
            ..Default::default()
        },
    )
    .expect("doacross schedulable");

    let pattern = match ours.cyclic_outcomes.as_slice() {
        [] => "DOALL (no Cyclic nodes)".to_string(),
        outcomes => outcomes
            .iter()
            .map(|o| match o {
                PatternOutcome::Found(p) => format!(
                    "pattern: {} iteration(s) every {} cycle(s) on {} PE(s)",
                    p.iters_per_period,
                    p.cycles_per_period,
                    p.kernel_processors()
                ),
                PatternOutcome::CapFallback(b) => {
                    format!(
                        "block fallback: {} iterations / {} cycles",
                        b.block_iters, b.period
                    )
                }
            })
            .collect::<Vec<_>>()
            .join("; "),
    };

    // A small schedule for the paper-style grid (first iterations only).
    let grid = {
        let small = kn_sched::schedule_loop(&w.graph, &m, 6.min(iters), &Default::default())
            .expect("schedulable");
        ScheduleTable::from_timed(&small.timing).render_grid(&w.graph)
    };

    // Enumeration order over the Cyclic subgraph (what Cyclic-sched visits).
    let enumeration = {
        let cls = classify(&w.graph);
        if cls.cyclic.is_empty() {
            String::new()
        } else {
            let (sub, back) = w.graph.induced_subgraph(&cls.cyclic);
            kn_sched::enumeration_order(&sub, sub.node_count() * 3)
                .into_iter()
                .map(|i| format!("{}{}", w.graph.name(back[i.node.index()]), i.iter))
                .collect::<Vec<_>>()
                .join(" ")
        }
    };

    let code = match ours.cyclic_outcomes.as_slice() {
        [PatternOutcome::Found(p)] => {
            Some(kn_sched::codegen::render_parallel_loop(&w.graph, p, "N"))
        }
        _ => None,
    };

    FigureReport {
        name: w.name.to_string(),
        iters,
        seq_time,
        ours_time: ours_sim.makespan,
        doacross_natural_time: natural.makespan(),
        doacross_best_time: best.makespan(),
        ours_sp: percentage_parallelism_clamped(seq_time, ours_sim.makespan),
        doacross_sp: percentage_parallelism_clamped(seq_time, natural.makespan()),
        doacross_best_sp: percentage_parallelism_clamped(seq_time, best.makespan()),
        ours_ii: ours.cyclic_ii(),
        doacross_delay: natural.delay,
        processors_ours: ours.processors_used(),
        processors_doacross: da_procs,
        pattern,
        grid,
        enumeration,
        code,
    }
}

/// Run [`figure_report`] over a set of workloads with the per-workload
/// cells submitted as one batch to the global batch scheduling service;
/// request ids preserve submission order, so reports come back in input
/// order, each equal to its sequential twin (the cells share no state).
pub fn figure_reports_par(workloads: Vec<Workload>, iters: u32) -> Vec<FigureReport> {
    figure_reports_par_with(workloads, iters, SimOptions::default())
}

/// [`figure_reports_par`] with an explicit execution model.
pub fn figure_reports_par_with(
    workloads: Vec<Workload>,
    iters: u32,
    sim: SimOptions,
) -> Vec<FigureReport> {
    use crate::service::{ScheduleRequest, ScheduleResponse};
    let svc = crate::service::global();
    let ids = svc.submit_batch(
        workloads
            .into_iter()
            .map(|workload| ScheduleRequest::Figure {
                workload,
                iters,
                sim,
            })
            .collect(),
    );
    svc.collect(&ids)
        .into_iter()
        .map(|(id, r)| match r {
            Ok(ScheduleResponse::Figure(report)) => *report,
            Ok(other) => unreachable!("figure cell answered with {other:?}"),
            Err(e) => panic!("figure cell {id} failed: {e}"),
        })
        .collect()
}

/// Paper Figure 8: the two DOACROSS schedules (natural, reordered) for a
/// workload, rendered as grids.
pub fn doacross_report(w: &Workload, iters: u32, procs: usize) -> (String, String) {
    let m = MachineConfig::new(procs, w.k);
    let natural = doacross_schedule(
        &w.graph,
        &m,
        iters,
        &DoacrossOptions {
            reorder: Reorder::Natural,
            ..Default::default()
        },
    )
    .unwrap();
    let best = doacross_schedule(
        &w.graph,
        &m,
        iters,
        &DoacrossOptions {
            reorder: Reorder::Best {
                exhaustive_cap: 5040,
            },
            ..Default::default()
        },
    )
    .unwrap();
    (
        ScheduleTable::from_timed(&natural.timing).render_grid(&w.graph),
        ScheduleTable::from_timed(&best.timing).render_grid(&w.graph),
    )
}

/// One-line summary for tables/CLI.
pub fn summary_line(r: &FigureReport) -> String {
    format!(
        "{:<12} ours Sp={:>5.1}%  doacross Sp={:>5.1}%  (II={}, delay={}, PEs {} vs {})",
        r.name,
        r.ours_sp,
        r.doacross_sp,
        r.ours_ii
            .map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "-".into()),
        r.doacross_delay,
        r.processors_ours,
        r.processors_doacross,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_report_matches_paper_shape() {
        let r = figure_report(&kn_workloads::figure7(), 100);
        // Paper: ours 40%, DOACROSS 0% (even optimally reordered). Strict
        // greedy does slightly better than the paper's hand schedule.
        assert!(r.ours_sp >= 40.0, "ours {}", r.ours_sp);
        assert_eq!(r.doacross_sp, 0.0, "DOACROSS cannot pipeline Figure 7");
        assert_eq!(r.ours_ii, Some(2.5));
        assert!(r.code.as_deref().unwrap().contains("PARBEGIN"));
        assert!(r.enumeration.starts_with("A0 D0 B0 E0 C0"));
    }

    #[test]
    fn elliptic_report_beats_doacross_which_gets_zero() {
        let r = figure_report(&kn_workloads::elliptic(), 60);
        assert!(r.ours_sp > 20.0, "ours {}", r.ours_sp);
        assert_eq!(r.doacross_sp, 0.0, "paper Fig. 12: DOACROSS at 0%");
    }

    #[test]
    fn cytron86_report_shape() {
        let r = figure_report(&kn_workloads::cytron86(), 100);
        assert!(
            r.ours_sp > r.doacross_sp + 10.0,
            "ours {} vs doacross {}",
            r.ours_sp,
            r.doacross_sp
        );
        assert!(r.ours_sp > 55.0, "paper: 72.7%; ours {}", r.ours_sp);
    }

    #[test]
    fn livermore_report_shape() {
        let r = figure_report(&kn_workloads::livermore18(), 100);
        assert!(
            r.ours_sp > r.doacross_sp,
            "ours {} vs doacross {}",
            r.ours_sp,
            r.doacross_sp
        );
        assert!(r.ours_sp > 30.0, "paper: 49.4%; ours {}", r.ours_sp);
    }

    #[test]
    fn parallel_figure_reports_equal_sequential() {
        let ws = vec![kn_workloads::figure7(), kn_workloads::cytron86()];
        let par = figure_reports_par(ws.clone(), 40);
        for (w, r) in ws.iter().zip(&par) {
            let seq = figure_report(w, 40);
            assert_eq!(r.name, seq.name);
            assert_eq!(r.ours_time, seq.ours_time);
            assert_eq!(r.doacross_natural_time, seq.doacross_natural_time);
            assert_eq!(r.doacross_best_time, seq.doacross_best_time);
            assert_eq!(r.ours_sp, seq.ours_sp);
            assert_eq!(r.grid, seq.grid);
            assert_eq!(r.enumeration, seq.enumeration);
            assert_eq!(r.code, seq.code);
        }
    }

    #[test]
    fn contended_figure_report_degrades_and_engines_agree() {
        use kn_sim::{EventEngine, LinkModel};
        let w = kn_workloads::figure7();
        let free = figure_report(&w, 60);
        let heap = figure_report_with(
            &w,
            60,
            &SimOptions {
                link: LinkModel::SingleMessage,
                engine: EventEngine::Heap,
            },
        );
        let calendar = figure_report_with(&w, 60, &SimOptions::contended());
        assert_eq!(heap.ours_time, calendar.ours_time);
        assert_eq!(heap.ours_sp, calendar.ours_sp);
        assert!(
            calendar.ours_time >= free.ours_time,
            "contention cannot speed us up"
        );
        // The parallel driver takes the same options.
        let par = figure_reports_par_with(vec![w], 60, SimOptions::contended());
        assert_eq!(par[0].ours_time, calendar.ours_time);
    }

    #[test]
    fn doacross_figure8_grids_render() {
        let (nat, best) = doacross_report(&kn_workloads::figure7(), 3, 4);
        assert!(nat.contains("PE0"));
        assert!(best.contains("PE0"));
    }
}
