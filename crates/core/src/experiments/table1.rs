//! Table 1: 25 random loops, our algorithm vs DOACROSS under fluctuating
//! communication traffic (`mm ∈ {1, 3, 5}`).
//!
//! Paper §4 protocol, reproduced:
//! * loops generated with the §4 recipe (40 nodes, 20 lcd + 20 sd,
//!   latencies 1..3), Cyclic subset extracted;
//! * both algorithms schedule with the *estimated* cost `k = 3`;
//! * the simulated multiprocessor charges each message
//!   `k + (0 .. mm-1)` cycles ("clearly a worst case scenario" at
//!   `mm = 5`, an underestimate of up to 2.3×);
//! * entry = percentage parallelism `(s - p)/s * 100`.
//!
//! Our per-loop numbers differ from the paper's (its RNG is unknown); the
//! distributional claims are the reproduction target: ours wins on
//! (almost) every loop, the average ratio is ≈ 3× and does **not** degrade
//! as traffic worsens.

use kn_doacross::{doacross_schedule, DoacrossOptions, Reorder};
use kn_metrics::{f1, percentage_parallelism_clamped, stats, Align, TextTable};
use kn_sched::MachineConfig;
use kn_sim::{sequential_time, SimOptions, TrafficModel};
use kn_workloads::{random_cyclic_loop_min, RandomLoopConfig};

/// Configuration of the Table 1 run (paper defaults).
#[derive(Clone, Debug)]
pub struct Table1Config {
    /// Loop seeds (the paper uses seeds 1..=25).
    pub seeds: Vec<u64>,
    /// Estimated communication cost.
    pub k: u32,
    /// Processor budget (the paper assumes "sufficient"; 8 is enough for
    /// every generated Cyclic subset to reach its pattern rate).
    pub procs: usize,
    /// Iterations executed on the simulated machine.
    pub iters: u32,
    /// Traffic fluctuation factors.
    pub mms: Vec<u32>,
    /// DOACROSS body-order policy.
    pub doacross_reorder: Reorder,
    /// Random-loop generator parameters. The paper's literal recipe is
    /// 40 nodes / 20 lcd / 20 sd, but its RNG and exact edge construction
    /// are unknown and that density yields mostly degenerate Cyclic cores
    /// under our generator. The default here (40 nodes / 12 lcd / 60 sd)
    /// is *calibrated* so the DOACROSS baseline lands near the paper's
    /// Table 1(b) average (≈ 16%), which makes the ratio claim testable;
    /// see EXPERIMENTS.md §Table 1.
    pub gen: RandomLoopConfig,
    /// Minimum Cyclic-core size (the paper's cores are never degenerate).
    pub min_core: usize,
    /// Execution model: link capacity plus the event-queue engine. The
    /// default (fully overlapped links) reproduces the paper's Table 1;
    /// `SimOptions::contended()` turns the same protocol into the
    /// long-horizon contention sweep (one message per link at a time).
    pub sim: SimOptions,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            seeds: (1..=25).collect(),
            k: 3,
            procs: 8,
            iters: 100,
            mms: vec![1, 3, 5],
            // The delay-minimizing reordered DOACROSS: the stronger form
            // of the baseline, and the calibration that matches the
            // paper's Table 1(b) DOACROSS average (≈ 16%). The paper's §3
            // figures use the natural order (see `figures.rs`).
            doacross_reorder: Reorder::Best {
                exhaustive_cap: 2000,
            },
            gen: RandomLoopConfig {
                nodes: 40,
                lcds: 12,
                sds: 60,
                min_latency: 1,
                max_latency: 3,
            },
            min_core: 4,
            sim: SimOptions::default(),
        }
    }
}

/// One loop's percentage parallelism per traffic setting.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub seed: u64,
    pub cyclic_nodes: usize,
    /// `ours[i]` = Sp under `mms[i]`.
    pub ours: Vec<f64>,
    pub doacross: Vec<f64>,
}

/// The whole table plus the paper's Table 1(b) summary.
#[derive(Clone, Debug)]
pub struct Table1Report {
    pub config: Table1Config,
    pub rows: Vec<Table1Row>,
    /// Average Sp per mm, ours.
    pub avg_ours: Vec<f64>,
    /// Average Sp per mm, DOACROSS.
    pub avg_doacross: Vec<f64>,
    /// Factor of speed-up over DOACROSS (ratio of averages), per mm —
    /// the paper reports 2.9 / 3.0 / 3.3.
    pub factor: Vec<f64>,
    /// Loops where DOACROSS beat us, per mm (paper: 0 / 1 / 2 of 25).
    pub losses: Vec<usize>,
}

/// One cell of the experiment: generate, schedule both ways, and simulate
/// seed `seed` under every traffic setting. Independent of every other
/// seed — the unit of work the parallel driver submits to the service
/// ([`ScheduleRequest::Table1Row`](crate::service::ScheduleRequest)).
pub(crate) fn table1_row(cfg: &Table1Config, seed: u64) -> Table1Row {
    let m = MachineConfig::new(cfg.procs, cfg.k);
    let g = random_cyclic_loop_min(seed, &cfg.gen, cfg.min_core);
    let s = sequential_time(&g, cfg.iters);
    let ours = kn_sched::schedule_loop(&g, &m, cfg.iters, &Default::default())
        .expect("random cyclic loop schedulable");
    let da = doacross_schedule(
        &g,
        &m,
        cfg.iters,
        &DoacrossOptions {
            reorder: cfg.doacross_reorder.clone(),
            ..Default::default()
        },
    )
    .expect("doacross schedulable");
    let mut row = Table1Row {
        seed,
        cyclic_nodes: g.node_count(),
        ours: Vec::new(),
        doacross: Vec::new(),
    };
    for &mm in &cfg.mms {
        let traffic = TrafficModel {
            mm,
            seed: seed.wrapping_mul(1_000_003) ^ mm as u64,
        };
        let ours_t = cfg
            .sim
            .run(&ours.program, &g, &m, &traffic)
            .unwrap()
            .makespan;
        let da_t = cfg.sim.run(&da.program, &g, &m, &traffic).unwrap().makespan;
        row.ours.push(percentage_parallelism_clamped(s, ours_t));
        row.doacross.push(percentage_parallelism_clamped(s, da_t));
    }
    row
}

/// Run the experiment sequentially.
pub fn run_table1(cfg: &Table1Config) -> Table1Report {
    let rows = cfg
        .seeds
        .iter()
        .map(|&seed| table1_row(cfg, seed))
        .collect();
    summarize(cfg, rows)
}

/// Run the experiment with seeds fanned out as one batch of
/// [`crate::service::ScheduleRequest::Table1Row`] cells on the global
/// batch scheduling service. Request ids preserve submission (= seed)
/// order, so rows come back in seed order and the summary reduction is
/// identical to [`run_table1`]'s — both entry points produce equal
/// reports (tested).
pub fn run_table1_par(cfg: &Table1Config) -> Table1Report {
    use crate::service::{ScheduleRequest, ScheduleResponse};
    let svc = crate::service::global();
    let shared = std::sync::Arc::new(cfg.clone());
    let ids = svc.submit_batch(
        cfg.seeds
            .iter()
            .map(|&seed| ScheduleRequest::Table1Row {
                config: std::sync::Arc::clone(&shared),
                seed,
            })
            .collect(),
    );
    let rows = svc
        .collect(&ids)
        .into_iter()
        .map(|(id, r)| match r {
            Ok(ScheduleResponse::Table1Row(row)) => row,
            Ok(other) => unreachable!("table1 cell answered with {other:?}"),
            Err(e) => panic!("table1 cell {id} failed: {e}"),
        })
        .collect();
    summarize(cfg, rows)
}

/// Deterministic reduction of per-seed rows into the paper's Table 1(b)
/// summary, in seed order.
fn summarize(cfg: &Table1Config, rows: Vec<Table1Row>) -> Table1Report {
    let nmm = cfg.mms.len();
    let mut avg_ours = Vec::with_capacity(nmm);
    let mut avg_doacross = Vec::with_capacity(nmm);
    let mut factor = Vec::with_capacity(nmm);
    let mut losses = Vec::with_capacity(nmm);
    for i in 0..nmm {
        let o: Vec<f64> = rows.iter().map(|r| r.ours[i]).collect();
        let d: Vec<f64> = rows.iter().map(|r| r.doacross[i]).collect();
        let (so, sd) = (stats(&o), stats(&d));
        avg_ours.push(so.mean);
        avg_doacross.push(sd.mean);
        factor.push(if sd.mean > 0.0 {
            so.mean / sd.mean
        } else {
            f64::INFINITY
        });
        losses.push(rows.iter().filter(|r| r.doacross[i] > r.ours[i]).count());
    }
    Table1Report {
        config: cfg.clone(),
        rows,
        avg_ours,
        avg_doacross,
        factor,
        losses,
    }
}

impl Table1Report {
    /// Render Table 1(a): per-loop percentage parallelism.
    pub fn render_rows(&self) -> String {
        let mut headers: Vec<String> = vec!["loop".into(), "|Cyclic|".into()];
        for mm in &self.config.mms {
            headers.push(format!("x (mm={mm})"));
            headers.push(format!("doacross (mm={mm})"));
        }
        let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&hrefs).align(0, Align::Left);
        for r in &self.rows {
            let mut cells = vec![r.seed.to_string(), r.cyclic_nodes.to_string()];
            for i in 0..self.config.mms.len() {
                cells.push(f1(r.ours[i]));
                cells.push(f1(r.doacross[i]));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Render Table 1(b): averages and the factor of speed-up.
    pub fn render_summary(&self) -> String {
        let mut headers: Vec<String> = vec!["".into()];
        for mm in &self.config.mms {
            headers.push(format!("mm={mm}"));
        }
        let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&hrefs).align(0, Align::Left);
        let fmt_row = |label: &str, xs: &[f64]| {
            let mut cells = vec![label.to_string()];
            cells.extend(xs.iter().map(|&x| f1(x)));
            cells
        };
        t.row(fmt_row("x", &self.avg_ours));
        t.row(fmt_row("DOACROSS", &self.avg_doacross));
        t.row(fmt_row("factor of speed-up", &self.factor));
        let mut cells = vec!["loops lost".to_string()];
        cells.extend(self.losses.iter().map(|l| l.to_string()));
        t.row(cells);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Table1Config {
        Table1Config {
            seeds: (1..=6).collect(),
            iters: 60,
            doacross_reorder: Reorder::Natural,
            ..Table1Config::default()
        }
    }

    #[test]
    fn ours_beats_doacross_on_average_under_all_traffic() {
        let r = run_table1(&small_cfg());
        for i in 0..r.config.mms.len() {
            assert!(
                r.avg_ours[i] > r.avg_doacross[i],
                "mm={}: {} vs {}",
                r.config.mms[i],
                r.avg_ours[i],
                r.avg_doacross[i]
            );
        }
    }

    #[test]
    fn factor_is_substantial_and_does_not_collapse_with_traffic() {
        // Paper Table 1(b): factors 2.9 / 3.0 / 3.3 — improving with mm.
        let r = run_table1(&small_cfg());
        let first = r.factor[0];
        let last = *r.factor.last().unwrap();
        assert!(first > 1.5, "factor at mm=1: {first}");
        assert!(
            last >= first * 0.8,
            "robustness: factor should not collapse ({first} -> {last})"
        );
    }

    #[test]
    fn parallelism_degrades_gracefully_with_mm() {
        let r = run_table1(&small_cfg());
        for row in &r.rows {
            for w in row.ours.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "more traffic cannot help: {row:?}");
            }
        }
    }

    #[test]
    fn rendering_contains_all_rows() {
        let r = run_table1(&small_cfg());
        let a = r.render_rows();
        assert!(a.contains("doacross (mm=5)"));
        assert_eq!(a.lines().count(), 2 + r.rows.len());
        let b = r.render_summary();
        assert!(b.contains("factor of speed-up"));
    }

    #[test]
    fn deterministic() {
        let a = run_table1(&small_cfg());
        let b = run_table1(&small_cfg());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.ours, y.ours);
            assert_eq!(x.doacross, y.doacross);
        }
    }

    #[test]
    fn contended_table1_runs_and_both_engines_agree() {
        use kn_sim::{EventEngine, LinkModel};
        let base = small_cfg();
        let free = run_table1(&base);
        let mut reports = Vec::new();
        for engine in [EventEngine::Heap, EventEngine::Calendar] {
            let cfg = Table1Config {
                sim: SimOptions {
                    link: LinkModel::SingleMessage,
                    engine,
                },
                ..small_cfg()
            };
            reports.push(run_table1(&cfg));
        }
        let (heap, calendar) = (&reports[0], &reports[1]);
        // Engine choice is invisible in the results...
        for (a, b) in heap.rows.iter().zip(&calendar.rows) {
            assert_eq!(a.ours, b.ours, "seed {}", a.seed);
            assert_eq!(a.doacross, b.doacross, "seed {}", a.seed);
        }
        assert_eq!(heap.render_summary(), calendar.render_summary());
        // ...while contention itself can only reduce parallelism.
        for (f, c) in free.rows.iter().zip(&calendar.rows) {
            for i in 0..f.ours.len() {
                assert!(c.ours[i] <= f.ours[i] + 1e-9, "seed {}", f.seed);
                assert!(c.doacross[i] <= f.doacross[i] + 1e-9, "seed {}", f.seed);
            }
        }
        // The parallel driver plumbs the same SimOptions through.
        let cfg = Table1Config {
            sim: SimOptions::contended(),
            ..small_cfg()
        };
        let par = run_table1_par(&cfg);
        for (a, b) in calendar.rows.iter().zip(&par.rows) {
            assert_eq!(a.ours, b.ours);
            assert_eq!(a.doacross, b.doacross);
        }
    }

    #[test]
    fn parallel_report_equals_sequential() {
        // Bit-for-bit: same rows (seed order), same averages, same factor.
        let seq = run_table1(&small_cfg());
        let par = run_table1_par(&small_cfg());
        assert_eq!(seq.rows.len(), par.rows.len());
        for (a, b) in seq.rows.iter().zip(&par.rows) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.cyclic_nodes, b.cyclic_nodes);
            assert_eq!(a.ours, b.ours);
            assert_eq!(a.doacross, b.doacross);
        }
        assert_eq!(seq.avg_ours, par.avg_ours);
        assert_eq!(seq.avg_doacross, par.avg_doacross);
        assert_eq!(seq.factor, par.factor);
        assert_eq!(seq.losses, par.losses);
        assert_eq!(seq.render_rows(), par.render_rows());
        assert_eq!(seq.render_summary(), par.render_summary());
    }
}
