//! Experiment drivers regenerating the paper's evaluation.
//!
//! | paper artifact | driver |
//! |---|---|
//! | Fig. 3 (pattern emergence) | [`figures::figure_report`] on `figure3` |
//! | Fig. 7(c)–(e) (schedule + transformed loop) | [`figures::figure_report`] on `figure7` |
//! | Fig. 8 (DOACROSS natural/reordered) | [`figures::doacross_report`] |
//! | Fig. 9/10 (Cytron86 example) | [`figures::figure_report`] on `cytron86` |
//! | Fig. 11 (Livermore 18) | [`figures::figure_report`] on `livermore18` |
//! | Fig. 12 (elliptic filter) | [`figures::figure_report`] on `elliptic` |
//! | Table 1(a)(b) (25 random loops × mm) | [`table1::run_table1`] |
//! | design-choice ablations (ours, beyond the paper) | [`ablate`] |

//! Every driver has a sequential entry point and (where the work is heavy
//! enough to matter) a `_par` twin that fans independent (workload,
//! machine) cells out across threads, reducing in deterministic input
//! order — parallel and sequential reports are equal, element for
//! element. The heavy drivers (`run_table1_par`,
//! `contention_ablation_par`, `figure_reports_par`) submit their cells as
//! batches to the global [`crate::service`] worker pool — the repo's one
//! long-lived fan-out engine; the lightweight ablations use the scoped
//! [`parallel`] helpers directly.
//!
//! Drivers that execute programs take a [`kn_sim::SimOptions`] (directly,
//! via a `_with` variant, or as a config field): it selects the link model
//! (the paper's fully overlapped links vs one-message-at-a-time links) and
//! the event-queue engine (`Heap` vs the default `Calendar`) behind the
//! contended runs. The engines are tested byte-identical, so the knob
//! changes cost, never results — which is what makes long-horizon
//! contention sweeps cheap enough to put in CI.

pub mod ablate;
pub mod figures;
pub mod parallel;
pub mod table1;
