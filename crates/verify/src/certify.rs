//! Static schedule certification.
//!
//! Given a DDG and a machine model, check that a produced schedule is
//! *provably* correct:
//!
//! * **coverage** — every instance `(node, iter < iters)` is placed
//!   exactly once (KN032);
//! * **resource feasibility** — no two instances overlap on one processor
//!   (KN031), and (advisory) no more messages are in flight per cycle
//!   than the machine has processors (KN033);
//! * **dependence satisfaction** — for every edge `(u → v, d)` and every
//!   iteration `i ≥ d`, the consumer `(v, i)` starts no earlier than the
//!   producer `(u, i−d)` finishes, plus the link latency when they sit on
//!   different processors (KN030).
//!
//! Concrete tables ([`certify_placements`]) are checked instance by
//! instance. Periodic [`Pattern`] kernels are certified **symbolically**
//! ([`certify_pattern`]): one boundary window (prologue, the first kernel
//! occurrences, and the wraparound overlap between adjacent occurrences)
//! is checked concretely, and the steady state is discharged once for all
//! occurrences by an occurrence-independent inequality — never by
//! instantiating 100k iterations.
//!
//! Producers outside the schedule (e.g. Flow-in nodes when certifying a
//! Cyclic-only pattern) are treated as ready at cycle 0, matching
//! [`kn_sched::static_times`] and the paper's §3 practice of measuring
//! the Cyclic core in isolation.

use crate::diag::{Code, Diagnostic, Report};
use crate::mii::{lint_ii, mii_bounds};
use kn_ddg::{Ddg, InstanceId};
use kn_sched::{
    Cycle, LoopSchedule, MachineConfig, Pattern, PatternOutcome, Placement, ScheduleTable,
    TimedProgram,
};
use std::collections::HashMap;

/// Knobs for [`certify_loop`] and friends.
#[derive(Clone, Copy, Debug)]
pub struct CertifyOptions {
    /// KN034 slack factor: flag schedules whose achieved II exceeds
    /// `ii_slack × MII`.
    pub ii_slack: f64,
    /// Emit the advisory KN033 link-pressure warning.
    pub check_links: bool,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        Self {
            ii_slack: 2.0,
            check_links: true,
        }
    }
}

/// At most this many findings per code before the rest are summarized —
/// a broken 100k-instance schedule must not produce 100k diagnostics.
const MAX_PER_CODE: usize = 8;

/// Report sink that caps per-code volume (see [`MAX_PER_CODE`]).
struct Sink {
    report: Report,
    counts: HashMap<Code, usize>,
}

impl Sink {
    fn new() -> Self {
        Self {
            report: Report::new(),
            counts: HashMap::new(),
        }
    }

    fn push(&mut self, d: Diagnostic) {
        let c = self.counts.entry(d.code).or_insert(0);
        *c += 1;
        if *c <= MAX_PER_CODE {
            self.report.push(d);
        }
    }

    fn finish(mut self) -> Report {
        let mut suppressed: Vec<(Code, usize)> = self
            .counts
            .iter()
            .filter(|(_, &n)| n > MAX_PER_CODE)
            .map(|(&code, &n)| (code, n - MAX_PER_CODE))
            .collect();
        suppressed.sort_by_key(|(code, _)| code.as_str());
        for (code, extra) in suppressed {
            self.report.push(Diagnostic::new(
                code,
                format!("{extra} additional {code} finding(s) suppressed"),
            ));
        }
        self.report
    }
}

/// Certify a concrete placement table against `g` and `m` for `iters`
/// iterations. `subset`, when given, restricts coverage and dependence
/// obligations to those nodes (others are external, ready at cycle 0).
fn certify_placements_impl(
    g: &Ddg,
    m: &MachineConfig,
    placements: &[Placement],
    iters: u32,
    subset: Option<&[bool]>,
    check_links: bool,
) -> Report {
    let mut sink = Sink::new();
    let in_subset = |v: kn_ddg::NodeId| subset.is_none_or(|s| s[v.index()]);

    // --- Coverage (KN032): each in-scope instance exactly once. ---
    let mut by_inst: HashMap<InstanceId, Placement> = HashMap::with_capacity(placements.len());
    for p in placements {
        if p.inst.node.index() >= g.node_count() || p.inst.iter >= iters {
            sink.push(
                Diagnostic::new(
                    Code::Kn032,
                    format!(
                        "foreign instance {} (outside the graph/iteration range)",
                        p.inst
                    ),
                )
                .with_nodes([p.inst.node]),
            );
            continue;
        }
        if let Some(prev) = by_inst.insert(p.inst, *p) {
            sink.push(
                Diagnostic::new(
                    Code::Kn032,
                    format!(
                        "instance {} placed twice (p{} @ {} and p{} @ {})",
                        p.inst, prev.proc, prev.start, p.proc, p.start
                    ),
                )
                .with_nodes([p.inst.node]),
            );
        }
    }
    for v in g.node_ids() {
        if !in_subset(v) {
            continue;
        }
        for i in 0..iters {
            let inst = InstanceId { node: v, iter: i };
            if !by_inst.contains_key(&inst) {
                sink.push(
                    Diagnostic::new(
                        Code::Kn032,
                        format!(
                            "instance {inst} ({:?}, iteration {i}) is not scheduled",
                            g.name(v)
                        ),
                    )
                    .with_nodes([v]),
                );
            }
        }
    }

    // --- Resource feasibility (KN031): per-processor overlap. ---
    let mut by_proc: HashMap<usize, Vec<Placement>> = HashMap::new();
    for p in by_inst.values() {
        by_proc.entry(p.proc).or_default().push(*p);
    }
    let mut procs: Vec<usize> = by_proc.keys().copied().collect();
    procs.sort_unstable();
    for proc in procs {
        let seq = by_proc.get_mut(&proc).expect("key from keys()");
        seq.sort_by_key(|p| (p.start, p.inst.iter, p.inst.node.0));
        for w in seq.windows(2) {
            let (a, b) = (w[0], w[1]);
            let fin = m.finish(a.start, g.latency(a.inst.node));
            if fin > b.start {
                sink.push(
                    Diagnostic::new(
                        Code::Kn031,
                        format!(
                            "processor {proc} oversubscribed: {} runs cycles {}..{} but {} starts at {}",
                            a.inst, a.start, fin, b.inst, b.start
                        ),
                    )
                    .with_nodes([a.inst.node, b.inst.node]),
                );
            }
        }
    }

    // --- Dependence satisfaction (KN030) + link pressure (KN033). ---
    let mut msgs: Vec<(Cycle, Cycle)> = Vec::new();
    for c in by_inst.values() {
        if !in_subset(c.inst.node) {
            continue;
        }
        for (eid, e) in g.in_edges(c.inst.node) {
            if e.distance > c.inst.iter || !in_subset(e.src) {
                continue;
            }
            let pred = InstanceId {
                node: e.src,
                iter: c.inst.iter - e.distance,
            };
            let Some(p) = by_inst.get(&pred) else {
                continue; // already a KN032 coverage finding
            };
            let fin = m.finish(p.start, g.latency(e.src));
            let ready = if p.proc == c.proc {
                m.local_ready(fin)
            } else {
                m.remote_ready(fin, m.edge_cost(e))
            };
            if c.start < ready {
                sink.push(
                    Diagnostic::new(
                        Code::Kn030,
                        format!(
                            "dependence {:?} -> {:?} (edge {eid}, dist {}) violated for \
                             iterations ({}, {}): producer {} on p{} is ready at cycle \
                             {ready}, consumer {} on p{} starts at {}",
                            g.name(e.src),
                            g.name(e.dst),
                            e.distance,
                            pred.iter,
                            c.inst.iter,
                            pred,
                            p.proc,
                            c.inst,
                            c.proc,
                            c.start
                        ),
                    )
                    .with_nodes([e.src, e.dst])
                    .with_edges([eid]),
                );
            }
            if check_links && p.proc != c.proc {
                msgs.push((fin, ready.max(fin)));
            }
        }
    }
    if check_links && !msgs.is_empty() {
        let peak = peak_overlap(&mut msgs);
        if peak > m.processors {
            sink.push(Diagnostic::new(
                Code::Kn033,
                format!(
                    "link pressure: up to {peak} messages in flight in one cycle \
                     on a {}-processor machine",
                    m.processors
                ),
            ));
        }
    }

    sink.finish()
}

/// Max number of half-open intervals `(start, end)` covering one point.
fn peak_overlap(msgs: &mut [(Cycle, Cycle)]) -> usize {
    let mut events: Vec<(Cycle, i32)> = Vec::with_capacity(msgs.len() * 2);
    for &mut (s, e) in msgs.iter_mut() {
        if e > s {
            events.push((s, 1));
            events.push((e, -1));
        }
    }
    events.sort_unstable();
    let mut cur = 0i32;
    let mut peak = 0i32;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

/// Certify a concrete placement list for `iters` iterations of `g`.
pub fn certify_placements(
    g: &Ddg,
    m: &MachineConfig,
    placements: &[Placement],
    iters: u32,
) -> Report {
    certify_placements_impl(g, m, placements, iters, None, true)
}

/// Certify a [`ScheduleTable`].
pub fn certify_table(g: &Ddg, m: &MachineConfig, table: &ScheduleTable, iters: u32) -> Report {
    certify_placements(g, m, table.placements(), iters)
}

/// Certify a [`TimedProgram`] (e.g. DOACROSS or `static_times` output)
/// for `iters` iterations.
pub fn certify_timed(g: &Ddg, m: &MachineConfig, t: &TimedProgram, iters: u32) -> Report {
    certify_table(g, m, &ScheduleTable::from_timed(t), iters)
}

/// Certify a periodic [`Pattern`] symbolically: kernel well-formedness
/// (KN035), one concrete boundary window (prologue + first occurrences +
/// wraparound), and an occurrence-independent steady-state inequality per
/// kernel dependence.
pub fn certify_pattern(g: &Ddg, m: &MachineConfig, p: &Pattern) -> Report {
    let mut report = Report::new();
    let d = p.iters_per_period;
    let t = p.cycles_per_period;
    if p.kernel.is_empty() {
        report.push(Diagnostic::new(Code::Kn035, "pattern has an empty kernel"));
        return report;
    }
    if d == 0 || t == 0 {
        report.push(Diagnostic::new(
            Code::Kn035,
            format!("degenerate kernel period: {d} iterations / {t} cycles"),
        ));
        return report;
    }

    // The node subset this pattern schedules; everything else (Flow-in /
    // Flow-out) is external.
    let mut in_pat = vec![false; g.node_count()];
    for pl in p.kernel.iter().chain(&p.prologue) {
        if pl.inst.node.index() < g.node_count() {
            in_pat[pl.inst.node.index()] = true;
        }
    }

    // KN035: each scheduled node's kernel entries must cover every
    // residue class mod `d` exactly once — otherwise successive
    // occurrences skip or double iterations.
    let mut residues: HashMap<kn_ddg::NodeId, Vec<u32>> = HashMap::new();
    for pl in &p.kernel {
        residues
            .entry(pl.inst.node)
            .or_default()
            .push(pl.inst.iter % d);
    }
    let mut kernel_nodes: Vec<kn_ddg::NodeId> = residues.keys().copied().collect();
    kernel_nodes.sort_unstable();
    for v in &kernel_nodes {
        let mut rs = residues[v].clone();
        rs.sort_unstable();
        let want: Vec<u32> = (0..d).collect();
        if rs != want {
            report.push(
                Diagnostic::new(
                    Code::Kn035,
                    format!(
                        "kernel covers iteration residues {rs:?} (mod {d}) for node {:?}, \
                         expected every residue exactly once",
                        g.name(*v)
                    ),
                )
                .with_nodes([*v]),
            );
        }
    }
    if report.has_errors() {
        return report; // residue breakage makes the steady-state check moot
    }

    // --- Steady state, discharged symbolically. For consumer kernel
    // entry c and producer kernel entry q of edge (u -> v, δ) with
    // q.iter ≡ c.iter − δ (mod d), *every* occurrence instantiates the
    // same inequality shifted by a multiple of T:
    //     c.start + rT ≥ ready(q.start + sT + lat, comm) + rT
    // so checking it once at occurrence offset s covers all r.
    let kernel_index: HashMap<(kn_ddg::NodeId, u32), Placement> = p
        .kernel
        .iter()
        .map(|pl| ((pl.inst.node, pl.inst.iter % d), *pl))
        .collect();
    for c in &p.kernel {
        for (eid, e) in g.in_edges(c.inst.node) {
            if !in_pat[e.src.index()] {
                continue;
            }
            let delta = e.distance;
            // Producer residue class of iteration c.iter − δ (mod d).
            let want = ((c.inst.iter as i64 - delta as i64).rem_euclid(d as i64)) as u32;
            let Some(q) = kernel_index.get(&(e.src, want)) else {
                // Producer node is in the pattern but has no kernel entry
                // for this residue — residue check above would have fired;
                // be defensive anyway.
                report.push(
                    Diagnostic::new(
                        Code::Kn032,
                        format!(
                            "no kernel producer for dependence {:?} -> {:?} at residue {want}",
                            g.name(e.src),
                            g.name(e.dst)
                        ),
                    )
                    .with_edges([eid]),
                );
                continue;
            };
            // Occurrence shift s: q.iter + s·d = c.iter − δ.
            let s = (c.inst.iter as i64 - delta as i64 - q.inst.iter as i64) / d as i64;
            let fin = m.finish(q.start, g.latency(e.src));
            let ready0 = if q.proc == c.proc {
                m.local_ready(fin)
            } else {
                m.remote_ready(fin, m.edge_cost(e))
            };
            let required = ready0 as i128 + t as i128 * s as i128;
            if (c.start as i128) < required {
                report.push(
                    Diagnostic::new(
                        Code::Kn030,
                        format!(
                            "steady-state dependence {:?} -> {:?} (edge {eid}, dist {delta}) \
                             violated: for every occurrence r, consumer ({}, {}+{d}r) starts \
                             at cycle {}+{t}r but producer ({}, {}+{d}r) is ready at {}+{t}r",
                            g.name(e.src),
                            g.name(e.dst),
                            g.name(c.inst.node),
                            c.inst.iter,
                            c.start,
                            g.name(e.src),
                            c.inst.iter as i64 - delta as i64,
                            required
                        ),
                    )
                    .with_nodes([e.src, e.dst])
                    .with_edges([eid]),
                );
            }
        }
    }

    // --- Boundary window: prologue, the prologue→kernel hand-off, and
    // enough kernel occurrences to witness every wraparound overlap
    // between occupied occurrences. The window size depends only on the
    // pattern's shape, never on the requested iteration count.
    let span: Cycle = {
        let lo = p.kernel.iter().map(|pl| pl.start).min().unwrap_or(0);
        let hi = p
            .kernel
            .iter()
            .map(|pl| m.finish(pl.start, g.latency(pl.inst.node)))
            .max()
            .unwrap_or(0);
        hi.saturating_sub(lo)
    };
    let overlap_occurrences = (span / t) as u32 + 2;
    let prologue_iters = p
        .prologue
        .iter()
        .map(|pl| pl.inst.iter + 1)
        .max()
        .unwrap_or(0);
    let window_iters = prologue_iters
        .saturating_add(d.saturating_mul(overlap_occurrences))
        .saturating_add(g.max_distance())
        .saturating_add(d)
        .min(4096); // hard cap keeps adversarial patterns cheap
    let window = p.instantiate(window_iters);
    report.merge(certify_placements_impl(
        g,
        m,
        &window,
        window_iters,
        Some(&in_pat),
        false,
    ));

    report
}

/// Certify a [`PatternOutcome`]: a found pattern symbolically, a block
/// fallback as the periodic schedule it tiles.
pub fn certify_outcome(g: &Ddg, m: &MachineConfig, o: &PatternOutcome) -> Report {
    match o {
        PatternOutcome::Found(p) => certify_pattern(g, m, p),
        PatternOutcome::CapFallback(b) => {
            // A block schedule is a pattern with an empty prologue.
            let as_pattern = Pattern {
                prologue: Vec::new(),
                kernel: b.block.clone(),
                iters_per_period: b.block_iters,
                cycles_per_period: b.period,
            };
            certify_pattern(g, m, &as_pattern)
        }
    }
}

/// Certify a complete [`LoopSchedule`] (the Figure 6 pipeline output):
/// the concrete program timing, each Cyclic pattern symbolically, and the
/// KN034 II-vs-MII quality lint.
pub fn certify_loop_with(
    g: &Ddg,
    m: &MachineConfig,
    s: &LoopSchedule,
    opts: &CertifyOptions,
) -> Report {
    let mut report = certify_placements_impl(
        g,
        m,
        ScheduleTable::from_timed(&s.timing).placements(),
        s.iters,
        None,
        opts.check_links,
    );
    for o in &s.cyclic_outcomes {
        report.merge(certify_outcome(g, m, o));
    }
    if let Some(ii) = s.cyclic_ii() {
        let bounds = mii_bounds(g, m);
        lint_ii(&mut report, &bounds, ii, opts.ii_slack);
    }
    report
}

/// [`certify_loop_with`] under default options.
pub fn certify_loop(g: &Ddg, m: &MachineConfig, s: &LoopSchedule) -> Report {
    certify_loop_with(g, m, s, &CertifyOptions::default())
}

/// `debug_assert`-style hook for [`kn_sched::FullOptions::certify`]:
/// errors (never warnings) fail the schedule.
pub fn certify_loop_hook(g: &Ddg, m: &MachineConfig, s: &LoopSchedule) -> Result<(), String> {
    let report = certify_loop(g, m, s);
    match report.first_error() {
        Some(d) => Err(d.to_string()),
        None => Ok(()),
    }
}

/// `debug_assert`-style hook for `DoacrossOptions::certify` (iteration
/// count inferred from the timed program).
pub fn certify_timed_hook(g: &Ddg, m: &MachineConfig, t: &TimedProgram) -> Result<(), String> {
    let iters = t.start.keys().map(|inst| inst.iter + 1).max().unwrap_or(0);
    let report = certify_timed(g, m, t, iters);
    match report.first_error() {
        Some(d) => Err(d.to_string()),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::{DdgBuilder, NodeId};
    use kn_sched::{schedule_loop, FullOptions};

    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    #[test]
    fn certifies_figure7_loop_schedule() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 20, &FullOptions::default()).unwrap();
        let r = certify_loop(&g, &m, &s);
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn symbolic_pattern_check_is_iteration_count_independent() {
        // Certifying the pattern touches a bounded window regardless of
        // how many iterations the service would instantiate.
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 12, &FullOptions::default()).unwrap();
        for o in &s.cyclic_outcomes {
            let r = certify_outcome(&g, &m, o);
            assert!(!r.has_errors(), "{}", r.render_human());
        }
    }

    #[test]
    fn mutation_swapped_slots_rejected() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 16, &FullOptions::default()).unwrap();
        let mut pl = ScheduleTable::from_timed(&s.timing).placements().to_vec();
        // Swap the start cycles of a dependent producer/consumer pair.
        let a = pl
            .iter()
            .position(|p| {
                p.inst
                    == InstanceId {
                        node: NodeId(0),
                        iter: 3,
                    }
            })
            .unwrap();
        let b = pl
            .iter()
            .position(|p| {
                p.inst
                    == InstanceId {
                        node: NodeId(1),
                        iter: 3,
                    }
            })
            .unwrap();
        let (sa, sb) = (pl[a].start, pl[b].start);
        pl[a].start = sb;
        pl[b].start = sa;
        let r = certify_placements(&g, &m, &pl, 16);
        assert!(r.has_errors(), "swap must be caught");
        let d = r.first_error().unwrap();
        assert!(
            matches!(d.code, Code::Kn030 | Code::Kn031),
            "expected a dependence/overlap error, got {}",
            d
        );
        assert!(!d.nodes.is_empty(), "finding must name the offenders");
    }

    #[test]
    fn mutation_dropped_comm_delay_rejected() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 16, &FullOptions::default()).unwrap();
        let mut pl = ScheduleTable::from_timed(&s.timing).placements().to_vec();
        // Find a cross-processor dependence and move the consumer up to
        // the producer's raw finish — as if the message were free.
        let by_inst: HashMap<InstanceId, Placement> = pl.iter().map(|p| (p.inst, *p)).collect();
        let mut mutated = false;
        'outer: for p in pl.iter_mut() {
            for (_, e) in g.in_edges(p.inst.node) {
                if e.distance > p.inst.iter {
                    continue;
                }
                let pred = InstanceId {
                    node: e.src,
                    iter: p.inst.iter - e.distance,
                };
                if let Some(q) = by_inst.get(&pred) {
                    let fin = m.finish(q.start, g.latency(e.src));
                    let ready = m.remote_ready(fin, m.edge_cost(e));
                    if q.proc != p.proc && p.start >= ready && ready > fin {
                        p.start = fin.saturating_sub(1);
                        mutated = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(mutated, "figure7 on 4 procs must have a cross-proc edge");
        let r = certify_placements(&g, &m, &pl, 16);
        assert!(r.has_errors());
        let kn030 = r.with_code(Code::Kn030).next();
        let kn031 = r.with_code(Code::Kn031).next();
        assert!(kn030.is_some() || kn031.is_some(), "{}", r.render_human());
        if let Some(d) = kn030 {
            assert!(!d.edges.is_empty(), "KN030 must name the edge");
        }
    }

    #[test]
    fn mutation_shrunk_ii_rejected() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 16, &FullOptions::default()).unwrap();
        let p = s.cyclic_outcomes[0]
            .pattern()
            .expect("figure7 finds a pattern");
        let mut shrunk = p.clone();
        shrunk.cycles_per_period -= 1;
        let r = certify_pattern(&g, &m, &shrunk);
        assert!(
            r.has_errors(),
            "shrinking the II must break a dependence or overlap:\n{}",
            r.render_human()
        );
    }

    #[test]
    fn mutation_dropped_instance_rejected() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 10, &FullOptions::default()).unwrap();
        let mut pl = ScheduleTable::from_timed(&s.timing).placements().to_vec();
        pl.remove(pl.len() / 2);
        let r = certify_placements(&g, &m, &pl, 10);
        assert_eq!(r.first_error().unwrap().code, Code::Kn032);
    }

    #[test]
    fn degenerate_kernels_are_kn035() {
        let g = figure7();
        let m = MachineConfig::new(2, 1);
        let empty = Pattern {
            prologue: Vec::new(),
            kernel: Vec::new(),
            iters_per_period: 1,
            cycles_per_period: 1,
        };
        assert_eq!(certify_pattern(&g, &m, &empty).diags[0].code, Code::Kn035);
        let zero_period = Pattern {
            prologue: Vec::new(),
            kernel: vec![Placement {
                inst: InstanceId {
                    node: NodeId(0),
                    iter: 0,
                },
                proc: 0,
                start: 0,
            }],
            iters_per_period: 1,
            cycles_per_period: 0,
        };
        assert_eq!(
            certify_pattern(&g, &m, &zero_period).diags[0].code,
            Code::Kn035
        );
    }

    #[test]
    fn broken_residue_cover_is_kn035() {
        // Kernel claims 2 iterations per period but only schedules
        // residue 0 for the node.
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.carried(x, x);
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 1);
        let p = Pattern {
            prologue: Vec::new(),
            kernel: vec![
                Placement {
                    inst: InstanceId { node: x, iter: 0 },
                    proc: 0,
                    start: 0,
                },
                Placement {
                    inst: InstanceId { node: x, iter: 2 },
                    proc: 0,
                    start: 1,
                },
            ],
            iters_per_period: 2,
            cycles_per_period: 2,
        };
        let r = certify_pattern(&g, &m, &p);
        assert_eq!(r.first_error().unwrap().code, Code::Kn035);
    }

    #[test]
    fn hook_rejects_mutants_and_accepts_genuine() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 12, &FullOptions::default()).unwrap();
        assert!(certify_loop_hook(&g, &m, &s).is_ok());
        let mut broken = s.clone();
        broken.iters += 1; // claims one more iteration than it schedules
        let err = certify_loop_hook(&g, &m, &broken).unwrap_err();
        assert!(err.contains("KN032"), "{err}");
    }
}
