//! The DDG lint pass.
//!
//! Two entry points:
//!
//! * [`lint_parts`] checks **raw** `(nodes, edges)` — the lenient form
//!   produced by [`kn_ddg::text::parse_parts`] or
//!   [`kn_ddg::DdgBuilder::parts`] — for the structural errors a built
//!   [`Ddg`] can never exhibit (dangling endpoints, zero latencies,
//!   duplicate names, intra-iteration cycles, …). This is the service
//!   admission gate: malformed graphs are rejected with a stable `KN0xx`
//!   code before a worker ever touches them.
//! * [`lint_graph`] checks a **valid** [`Ddg`] for smells (dead nodes,
//!   duplicate parallel edges, unnormalized distances) and emits the SCC
//!   recurrence report (KN020).
//!
//! [`lint_text`] composes both over the `.ddg` text format.

use crate::diag::{Code, Diagnostic, Report};
use kn_ddg::{Ddg, Edge, EdgeId, Node, NodeId, ParseError};
use std::collections::HashMap;

/// Lint raw graph parts for structural validity (codes KN001–KN007).
///
/// An empty report means [`kn_ddg::DdgBuilder::build`] on the same parts
/// will succeed.
pub fn lint_parts(nodes: &[Node], edges: &[Edge]) -> Report {
    let mut r = Report::new();
    if nodes.is_empty() {
        r.push(Diagnostic::new(Code::Kn006, "graph has no nodes"));
        if edges.is_empty() {
            return r;
        }
    }

    // KN001: zero-latency nodes.
    for (i, n) in nodes.iter().enumerate() {
        if n.latency == 0 {
            r.push(
                Diagnostic::new(Code::Kn001, format!("node {:?} has zero latency", n.name))
                    .with_nodes([NodeId(i as u32)]),
            );
        }
    }

    // KN002: duplicate node names.
    let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(NodeId(i as u32));
    }
    let mut dup_names: Vec<(&str, Vec<NodeId>)> = by_name
        .into_iter()
        .filter(|(_, ids)| ids.len() > 1)
        .collect();
    dup_names.sort_by_key(|(_, ids)| ids[0]);
    for (name, ids) in dup_names {
        r.push(
            Diagnostic::new(
                Code::Kn002,
                format!("duplicate node name {name:?} ({} nodes)", ids.len()),
            )
            .with_nodes(ids),
        );
    }

    // KN003: dangling edge endpoints; KN004: zero-distance self-deps.
    let n = nodes.len() as u32;
    let mut sound_edges: Vec<(EdgeId, Edge)> = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        let id = EdgeId(i as u32);
        if e.src.0 >= n || e.dst.0 >= n {
            r.push(
                Diagnostic::new(
                    Code::Kn003,
                    format!(
                        "edge {id} references a missing node ({} -> {})",
                        e.src, e.dst
                    ),
                )
                .with_edges([id]),
            );
            continue;
        }
        if e.src == e.dst && e.distance == 0 {
            r.push(
                Diagnostic::new(
                    Code::Kn004,
                    format!(
                        "zero-distance self-dependence on node {:?}",
                        nodes[e.src.index()].name
                    ),
                )
                .with_nodes([e.src])
                .with_edges([id]),
            );
            continue;
        }
        sound_edges.push((id, *e));
    }

    // KN005: a cycle in the distance-0 subgraph (no execution order can
    // satisfy it). Kahn peeling: whatever survives sits on a cycle.
    let intra: Vec<(EdgeId, Edge)> = sound_edges
        .iter()
        .filter(|(_, e)| e.distance == 0)
        .copied()
        .collect();
    if let Some((cyc_nodes, cyc_edges)) = residual_cycle(nodes.len(), &intra) {
        let names: Vec<&str> = cyc_nodes
            .iter()
            .map(|v| nodes[v.index()].name.as_str())
            .collect();
        r.push(
            Diagnostic::new(
                Code::Kn005,
                format!("distance-0 subgraph has a cycle through {names:?}"),
            )
            .with_nodes(cyc_nodes)
            .with_edges(cyc_edges),
        );
    }

    // KN007: a dependence cycle of total latency zero (any distances).
    // Such a cycle can only pass through zero-latency nodes.
    if nodes.iter().any(|nd| nd.latency == 0) {
        let zero: Vec<(EdgeId, Edge)> = sound_edges
            .iter()
            .filter(|(_, e)| nodes[e.src.index()].latency == 0 && nodes[e.dst.index()].latency == 0)
            .copied()
            .collect();
        // Include self-loops here: a carried self-dep on a zero-latency
        // node is a zero-latency cycle too.
        if let Some((cyc_nodes, cyc_edges)) = residual_cycle_with_self(nodes.len(), &zero) {
            let names: Vec<&str> = cyc_nodes
                .iter()
                .map(|v| nodes[v.index()].name.as_str())
                .collect();
            r.push(
                Diagnostic::new(
                    Code::Kn007,
                    format!("dependence cycle of total latency 0 through {names:?}"),
                )
                .with_nodes(cyc_nodes)
                .with_edges(cyc_edges),
            );
        }
    }

    r
}

/// Two-sided peeling over `edges` (self-loops excluded by the caller):
/// repeatedly drop nodes with no incoming or no outgoing live edge. What
/// survives lies on (or between) cycles. Returns `None` when acyclic.
fn residual_cycle(n: usize, edges: &[(EdgeId, Edge)]) -> Option<(Vec<NodeId>, Vec<EdgeId>)> {
    let mut alive = vec![true; n];
    loop {
        let mut indeg = vec![0usize; n];
        let mut outdeg = vec![0usize; n];
        for (_, e) in edges {
            if alive[e.src.index()] && alive[e.dst.index()] {
                outdeg[e.src.index()] += 1;
                indeg[e.dst.index()] += 1;
            }
        }
        let mut changed = false;
        for v in 0..n {
            if alive[v] && (indeg[v] == 0 || outdeg[v] == 0) {
                alive[v] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if alive.iter().all(|&a| !a) {
        return None;
    }
    let cyc_nodes: Vec<NodeId> = (0..n)
        .filter(|&v| alive[v])
        .map(|v| NodeId(v as u32))
        .collect();
    let cyc_edges: Vec<EdgeId> = edges
        .iter()
        .filter(|(_, e)| alive[e.src.index()] && alive[e.dst.index()])
        .map(|(id, _)| *id)
        .collect();
    Some((cyc_nodes, cyc_edges))
}

/// Like [`residual_cycle`], but a self-loop alone is a cycle.
fn residual_cycle_with_self(
    n: usize,
    edges: &[(EdgeId, Edge)],
) -> Option<(Vec<NodeId>, Vec<EdgeId>)> {
    for (id, e) in edges {
        if e.src == e.dst {
            return Some((vec![e.src], vec![*id]));
        }
    }
    residual_cycle(n, edges)
}

/// Lint a valid graph for smells (KN010–KN012) and emit the SCC
/// recurrence report (KN020).
pub fn lint_graph(g: &Ddg) -> Report {
    let mut r = Report::new();

    // KN010: dead nodes — no dependence touches them (only meaningful
    // when the graph has other nodes; a 1-node loop body is fine).
    if g.node_count() >= 2 {
        for v in g.node_ids() {
            if g.in_degree(v) == 0 && g.out_degree(v) == 0 {
                r.push(
                    Diagnostic::new(
                        Code::Kn010,
                        format!("node {:?} is disconnected from every dependence", g.name(v)),
                    )
                    .with_nodes([v]),
                );
            }
        }
    }

    // KN011: duplicate parallel edges.
    let mut seen: HashMap<(NodeId, NodeId, u32), EdgeId> = HashMap::new();
    for id in g.edge_ids() {
        let e = g.edge(id);
        match seen.entry((e.src, e.dst, e.distance)) {
            std::collections::hash_map::Entry::Occupied(first) => {
                r.push(
                    Diagnostic::new(
                        Code::Kn011,
                        format!(
                            "duplicate dependence {:?} -> {:?} (dist={})",
                            g.name(e.src),
                            g.name(e.dst),
                            e.distance
                        ),
                    )
                    .with_edges([*first.get(), id]),
                );
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(id);
            }
        }
    }

    // KN012: unnormalized distances (info; Cyclic-sched needs unrolling).
    for id in g.edge_ids() {
        let e = g.edge(id);
        if e.distance > 1 {
            r.push(
                Diagnostic::new(
                    Code::Kn012,
                    format!(
                        "distance {} on {:?} -> {:?} needs normalization for Cyclic-sched",
                        e.distance,
                        g.name(e.src),
                        g.name(e.dst)
                    ),
                )
                .with_edges([id]),
            );
        }
    }

    // KN020: SCC recurrence report — one finding per nontrivial SCC.
    for scc in kn_ddg::strongly_connected_components(g) {
        if scc.is_trivial(g) {
            continue;
        }
        let (sub, _back) = g.induced_subgraph(&scc.nodes);
        let bound = kn_ddg::scc::recurrence_bound(&sub);
        let lat: u64 = scc.nodes.iter().map(|&v| g.latency(v) as u64).sum();
        let names: Vec<&str> = scc.nodes.iter().map(|&v| g.name(v)).collect();
        r.push(
            Diagnostic::new(
                Code::Kn020,
                format!(
                    "recurrence through {names:?}: total latency {lat}, \
                     cycle bound {bound:.3} cycles/iteration"
                ),
            )
            .with_nodes(scc.nodes.clone()),
        );
    }

    r
}

/// The result of linting `.ddg` text: the report, the raw parts, and the
/// built graph when the parts were structurally clean.
#[derive(Clone, Debug)]
pub struct TextLint {
    pub report: Report,
    pub nodes: Vec<Node>,
    pub edges: Vec<Edge>,
    /// `Some` iff no structural (`Error`) finding prevented the build.
    pub graph: Option<Ddg>,
}

/// Lint `.ddg` text: syntax errors still fail hard (`ParseError`), but
/// *semantic* problems — the ones [`kn_ddg::parse_text`] would reject —
/// come back as diagnostics instead.
pub fn lint_text(input: &str) -> Result<TextLint, ParseError> {
    let (nodes, edges) = kn_ddg::text::parse_parts(input)?;
    let mut report = lint_parts(&nodes, &edges);
    let graph = if report.has_errors() {
        None
    } else {
        kn_ddg::parse_text(input).ok()
    };
    if let Some(g) = &graph {
        report.merge(lint_graph(g));
    }
    Ok(TextLint {
        report,
        nodes,
        edges,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use kn_ddg::DdgBuilder;

    fn node(name: &str, lat: u32) -> Node {
        Node {
            name: name.into(),
            latency: lat,
            stmt: None,
        }
    }

    fn edge(src: u32, dst: u32, dist: u32) -> Edge {
        Edge {
            src: NodeId(src),
            dst: NodeId(dst),
            distance: dist,
            cost: None,
        }
    }

    #[test]
    fn clean_parts_pass() {
        let nodes = vec![node("a", 1), node("b", 2)];
        let edges = vec![edge(0, 1, 0), edge(1, 0, 1)];
        let r = lint_parts(&nodes, &edges);
        assert!(r.is_empty(), "{}", r.render_human());
    }

    #[test]
    fn empty_graph_is_kn006() {
        let r = lint_parts(&[], &[]);
        assert_eq!(r.diags[0].code, Code::Kn006);
        assert!(r.has_errors());
    }

    #[test]
    fn zero_latency_is_kn001() {
        let r = lint_parts(&[node("a", 0)], &[]);
        assert_eq!(r.diags[0].code, Code::Kn001);
        assert_eq!(r.diags[0].nodes, vec![NodeId(0)]);
    }

    #[test]
    fn duplicate_name_is_kn002() {
        let r = lint_parts(&[node("a", 1), node("a", 1)], &[]);
        assert_eq!(r.diags[0].code, Code::Kn002);
        assert_eq!(r.diags[0].nodes, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn dangling_edge_is_kn003() {
        let r = lint_parts(&[node("a", 1)], &[edge(0, 7, 0)]);
        assert_eq!(r.diags[0].code, Code::Kn003);
        assert_eq!(r.diags[0].edges, vec![EdgeId(0)]);
    }

    #[test]
    fn zero_distance_self_dep_is_kn004() {
        let r = lint_parts(&[node("a", 1)], &[edge(0, 0, 0)]);
        assert_eq!(r.diags[0].code, Code::Kn004);
        assert_eq!(r.diags[0].nodes, vec![NodeId(0)]);
        // …and it is not double-reported as a KN005 cycle.
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn intra_cycle_is_kn005() {
        let nodes = vec![node("a", 1), node("b", 1), node("c", 1)];
        let edges = vec![edge(0, 1, 0), edge(1, 0, 0), edge(1, 2, 0)];
        let r = lint_parts(&nodes, &edges);
        let d = r.with_code(Code::Kn005).next().unwrap();
        assert_eq!(d.nodes, vec![NodeId(0), NodeId(1)]);
        assert_eq!(d.edges, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn zero_latency_cycle_is_kn007() {
        // A carried self-dependence on a zero-latency node: the recurrence
        // bound degenerates (0 latency / 1 distance).
        let r = lint_parts(&[node("a", 0)], &[edge(0, 0, 1)]);
        assert!(r.with_code(Code::Kn001).next().is_some());
        let d = r.with_code(Code::Kn007).next().unwrap();
        assert_eq!(d.nodes, vec![NodeId(0)]);
    }

    #[test]
    fn graph_lint_flags_dead_nodes_and_dup_edges() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let _z = b.node("z"); // never connected
        b.dep(x, y);
        b.dep(x, y); // duplicate parallel edge
        let g = b.build().unwrap();
        let r = lint_graph(&g);
        let dead = r.with_code(Code::Kn010).next().unwrap();
        assert_eq!(dead.nodes, vec![NodeId(2)]);
        let dup = r.with_code(Code::Kn011).next().unwrap();
        assert_eq!(dup.edges.len(), 2);
        assert_eq!(r.max_severity(), Some(Severity::Warning));
    }

    #[test]
    fn graph_lint_reports_recurrences() {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        let y = b.node_lat("y", 3);
        b.dep(x, y);
        b.carried(y, x);
        let g = b.build().unwrap();
        let r = lint_graph(&g);
        let rec = r.with_code(Code::Kn020).next().unwrap();
        assert_eq!(rec.severity, Severity::Info);
        assert!(rec.message.contains("total latency 5"), "{}", rec.message);
        assert!(rec.message.contains("5.000"), "{}", rec.message);
    }

    #[test]
    fn unnormalized_distance_is_info() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.dep_dist(x, x, 3);
        let g = b.build().unwrap();
        let r = lint_graph(&g);
        assert!(r.with_code(Code::Kn012).next().is_some());
        assert!(!r.has_errors());
    }

    #[test]
    fn lint_text_end_to_end() {
        let good = "node a lat=1\nnode b lat=2\nedge a -> b\nedge b -> a dist=1\n";
        let t = lint_text(good).unwrap();
        assert!(t.graph.is_some());
        assert!(!t.report.has_errors());
        assert!(t.report.with_code(Code::Kn020).next().is_some());

        let bad = "node a lat=1\nedge a -> a dist=0\n";
        let t = lint_text(bad).unwrap();
        assert!(t.graph.is_none());
        assert_eq!(t.report.first_error().unwrap().code, Code::Kn004);

        // Syntax errors still fail hard.
        assert!(lint_text("nodule a\n").is_err());
    }
}
