#![forbid(unsafe_code)]
//! # kn-verify — static certification for Kim & Nicolau loop schedules
//!
//! Everything else in this repository trusts schedules *dynamically*: the
//! simulator replays them and goldens pin the outputs. This crate proves
//! them correct *statically*, with three analyses:
//!
//! * [`lint`] — a DDG lint pass over raw `(nodes, edges)` parts or built
//!   graphs: structural errors (dangling endpoints, zero-distance
//!   self-dependences, intra-iteration cycles, …), graph smells, and an
//!   SCC recurrence report. This is the service admission gate: malformed
//!   graphs are rejected with a stable code before a worker runs them.
//! * [`certify`] — a schedule certifier: dependence satisfaction (with
//!   cross-processor link latency at the edge's iteration distance),
//!   resource feasibility, and coverage, for concrete tables, DOACROSS
//!   programs, and periodic [`kn_sched::Pattern`] kernels — the latter
//!   verified symbolically over one period plus wraparound, never by
//!   instantiating the full iteration count.
//! * [`mii`] — recurrence and resource MII bounds, plus the KN034
//!   achieved-II-vs-bound quality lint.
//!
//! Every finding is a [`Diagnostic`] with a stable `KN0xx` [`Code`]
//! (catalogued in [`diagnostics`]), a [`Severity`], the offending
//! node/edge ids, and both human and JSON renderings ([`Report`]).

pub mod certify;
pub mod diag;
pub mod lint;
pub mod mii;

/// The `KN0xx` diagnostic catalogue (from `docs/diagnostics.md`).
#[doc = include_str!("../../../docs/diagnostics.md")]
pub mod diagnostics {}

pub use certify::{
    certify_loop, certify_loop_hook, certify_loop_with, certify_outcome, certify_pattern,
    certify_placements, certify_table, certify_timed, certify_timed_hook, CertifyOptions,
};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use lint::{lint_graph, lint_parts, lint_text, TextLint};
pub use mii::{lint_ii, mii_bounds, MiiBounds};
