//! Structured diagnostics: stable codes, severities, offending graph
//! objects, and the human/JSON renderers shared by every analysis in this
//! crate.
//!
//! Every finding carries a stable `KN0xx` code (catalogued in
//! [`crate::diagnostics`] / `docs/diagnostics.md`) so that CI jobs, the
//! service admission path, and golden files can assert on codes rather
//! than message text.

use kn_ddg::{EdgeId, NodeId};

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (e.g. the SCC recurrence report).
    Info,
    /// Suspicious but schedulable (e.g. a dead node).
    Warning,
    /// The graph or schedule is invalid; reject it.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric ranges are load-bearing:
/// `KN00x` = malformed graph structure, `KN01x` = graph smells,
/// `KN02x` = analysis reports, `KN03x` = schedule certification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Code {
    /// A node has zero latency.
    Kn001,
    /// Two nodes share a name.
    Kn002,
    /// An edge endpoint references a missing node.
    Kn003,
    /// A zero-distance self-dependence (`v -> v, d=0`).
    Kn004,
    /// The distance-0 subgraph has a cycle (not schedulable in any order).
    Kn005,
    /// The graph has no nodes.
    Kn006,
    /// A dependence cycle whose total latency is zero.
    Kn007,
    /// A dead node: no dependence edge touches it (in a multi-node graph).
    Kn010,
    /// Duplicate parallel edge (same source, target, and distance).
    Kn011,
    /// A dependence distance greater than 1 (needs normalization for
    /// Cyclic-sched; DOACROSS handles it natively).
    Kn012,
    /// SCC recurrence report (informational).
    Kn020,
    /// A schedule violates a dependence edge.
    Kn030,
    /// Two instances overlap on one processor.
    Kn031,
    /// A schedule misses or duplicates an instance.
    Kn032,
    /// Link oversubscription (more in-flight messages than processors).
    Kn033,
    /// The achieved initiation interval exceeds the MII bound.
    Kn034,
    /// A periodic kernel is malformed (zero period / broken residue cover).
    Kn035,
}

impl Code {
    /// The stable printed form, e.g. `"KN004"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Kn001 => "KN001",
            Code::Kn002 => "KN002",
            Code::Kn003 => "KN003",
            Code::Kn004 => "KN004",
            Code::Kn005 => "KN005",
            Code::Kn006 => "KN006",
            Code::Kn007 => "KN007",
            Code::Kn010 => "KN010",
            Code::Kn011 => "KN011",
            Code::Kn012 => "KN012",
            Code::Kn020 => "KN020",
            Code::Kn030 => "KN030",
            Code::Kn031 => "KN031",
            Code::Kn032 => "KN032",
            Code::Kn033 => "KN033",
            Code::Kn034 => "KN034",
            Code::Kn035 => "KN035",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::Kn001
            | Code::Kn002
            | Code::Kn003
            | Code::Kn004
            | Code::Kn005
            | Code::Kn006
            | Code::Kn007
            | Code::Kn030
            | Code::Kn031
            | Code::Kn032
            | Code::Kn035 => Severity::Error,
            Code::Kn010 | Code::Kn011 | Code::Kn033 | Code::Kn034 => Severity::Warning,
            Code::Kn012 | Code::Kn020 => Severity::Info,
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding: a code, its severity, a message, and the graph objects it
/// points at.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub message: String,
    /// Offending nodes (may be empty).
    pub nodes: Vec<NodeId>,
    /// Offending edges (may be empty).
    pub edges: Vec<EdgeId>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.severity(),
            message: message.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Attach offending nodes.
    pub fn with_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.nodes.extend(nodes);
        self
    }

    /// Attach offending edges.
    pub fn with_edges(mut self, edges: impl IntoIterator<Item = EdgeId>) -> Self {
        self.edges.extend(edges);
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.nodes.is_empty() {
            write!(f, " (nodes:")?;
            for n in &self.nodes {
                write!(f, " {n}")?;
            }
            write!(f, ")")?;
        }
        if !self.edges.is_empty() {
            write!(f, " (edges:")?;
            for e in &self.edges {
                write!(f, " {e}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics from one analysis run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    pub diags: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Append all diagnostics of another report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// The worst severity present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// True if any finding is `Error` severity.
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// The first `Error`-severity finding, if any — what the service
    /// admission path reports.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.severity == Severity::Error)
    }

    /// All diagnostics with a given code.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.code == code)
    }

    /// Every node flagged by an `Error` or `Warning` finding (for dot
    /// annotation); deduplicated, in first-flagged order.
    pub fn flagged_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for d in &self.diags {
            if d.severity >= Severity::Warning {
                for &n in &d.nodes {
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
        out
    }

    /// Every edge flagged by an `Error` or `Warning` finding.
    pub fn flagged_edges(&self) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = Vec::new();
        for d in &self.diags {
            if d.severity >= Severity::Warning {
                for &e in &d.edges {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
            }
        }
        out
    }

    /// Human-readable rendering: one line per finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "{} finding(s): {errors} error(s), {warnings} warning(s)\n",
            self.diags.len()
        ));
        out
    }

    /// JSON rendering (an array of finding objects), schema
    /// `kn-verify-report-v1`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\": \"kn-verify-report-v1\", \"findings\": [");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", \"nodes\": [{}], \"edges\": [{}]}}",
                d.code,
                d.severity,
                json_escape(&d.message),
                d.nodes
                    .iter()
                    .map(|n| n.0.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                d.edges
                    .iter()
                    .map(|e| e.0.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (mirrors `kn_core::service::wire::esc`).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_have_stable_strings_and_severities() {
        assert_eq!(Code::Kn004.as_str(), "KN004");
        assert_eq!(Code::Kn004.severity(), Severity::Error);
        assert_eq!(Code::Kn010.severity(), Severity::Warning);
        assert_eq!(Code::Kn020.severity(), Severity::Info);
        assert_eq!(Code::Kn030.to_string(), "KN030");
    }

    #[test]
    fn report_summaries() {
        let mut r = Report::new();
        assert!(r.max_severity().is_none());
        r.push(Diagnostic::new(Code::Kn020, "scc"));
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Code::Kn004, "self dep").with_nodes([NodeId(2)]));
        assert!(r.has_errors());
        assert_eq!(r.first_error().unwrap().code, Code::Kn004);
        assert_eq!(r.flagged_nodes(), vec![NodeId(2)]);
    }

    #[test]
    fn human_rendering_carries_code_and_objects() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::Kn003, "edge e1 references a missing node")
                .with_edges([EdgeId(1)]),
        );
        let h = r.render_human();
        assert!(h.contains("error[KN003]"), "{h}");
        assert!(h.contains("(edges: e1)"), "{h}");
        assert!(h.contains("1 finding(s): 1 error(s), 0 warning(s)"), "{h}");
    }

    #[test]
    fn json_rendering_escapes() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::Kn002, "duplicate name \"a\"").with_nodes([NodeId(0), NodeId(1)]),
        );
        let j = r.render_json();
        assert!(j.contains("\"code\": \"KN002\""), "{j}");
        assert!(j.contains("duplicate name \\\"a\\\""), "{j}");
        assert!(j.contains("\"nodes\": [0, 1]"), "{j}");
    }
}
