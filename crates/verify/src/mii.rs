//! Minimum initiation interval (MII) bounds.
//!
//! The steady-state rate of any periodic schedule is bounded below by two
//! classic quantities (Rau & Glaeser; the paper eyeballs them in Table 1):
//!
//! * **recurrence MII** — the max over dependence cycles of
//!   `Σ latency / Σ distance` (a cycle of total latency `L` spanning `D`
//!   iterations forces at least `L / D` cycles per iteration);
//! * **resource MII** — `Σ latency / processors` (each iteration needs
//!   `body_latency` cycles of machine time spread over `p` processors).
//!
//! [`lint_ii`] turns the bound into a KN034 quality lint: a schedule whose
//! achieved II exceeds `slack × MII` is flagged (never rejected — the
//! paper's own Figure 7 pattern achieves exactly its recurrence MII, but
//! communication-heavy loops legitimately sit above the bound).

use crate::diag::{Code, Diagnostic, Report};
use kn_ddg::Ddg;
use kn_sched::MachineConfig;

/// The two lower bounds on cycles-per-iteration, and their max.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MiiBounds {
    /// Max over SCC cycles of `Σ latency / Σ distance`; 0 for DOALL loops.
    pub recurrence_mii: f64,
    /// `body_latency / processors`.
    pub resource_mii: f64,
}

impl MiiBounds {
    /// The binding bound: `max(recurrence, resource)`.
    pub fn bound(&self) -> f64 {
        self.recurrence_mii.max(self.resource_mii)
    }
}

/// Compute both MII bounds for a loop on a machine.
///
/// The recurrence bound ignores communication cost (it holds even for a
/// single processor, where no messages are sent), so it is a true lower
/// bound for every placement.
pub fn mii_bounds(g: &Ddg, m: &MachineConfig) -> MiiBounds {
    MiiBounds {
        recurrence_mii: kn_ddg::scc::recurrence_bound(g),
        resource_mii: g.body_latency() as f64 / m.processors as f64,
    }
}

/// KN034 quality lint: flag `achieved_ii` when it exceeds `slack × MII`.
///
/// `slack` is a multiplicative factor (e.g. `2.0` = "flag schedules more
/// than 2x slower than the bound"); values `< 1.0` are treated as `1.0`.
pub fn lint_ii(report: &mut Report, bounds: &MiiBounds, achieved_ii: f64, slack: f64) {
    let slack = slack.max(1.0);
    let bound = bounds.bound();
    if bound > 0.0 && achieved_ii > bound * slack + 1e-9 {
        report.push(Diagnostic::new(
            Code::Kn034,
            format!(
                "achieved II {achieved_ii:.3} exceeds {slack:.2}x the MII bound \
                 {bound:.3} (recurrence {:.3}, resource {:.3})",
                bounds.recurrence_mii, bounds.resource_mii
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::DdgBuilder;

    /// Paper Figure 7: recurrence MII is 2.5 (cycle A->B->C->D->E->A has
    /// latency 5 over distance 2).
    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    #[test]
    fn figure7_recurrence_mii() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let b = mii_bounds(&g, &m);
        assert!((b.recurrence_mii - 2.5).abs() < 1e-6, "{b:?}");
        assert!((b.resource_mii - 1.25).abs() < 1e-9);
        assert!((b.bound() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn doall_has_zero_recurrence() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 1);
        let bounds = mii_bounds(&g, &m);
        assert_eq!(bounds.recurrence_mii, 0.0);
        assert!((bounds.bound() - 1.0).abs() < 1e-9); // 2 latency / 2 procs
    }

    #[test]
    fn ii_lint_fires_only_past_slack() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let bounds = mii_bounds(&g, &m);
        let mut r = Report::new();
        lint_ii(&mut r, &bounds, 2.5, 1.0); // exactly at the bound: clean
        assert!(r.is_empty());
        lint_ii(&mut r, &bounds, 6.0, 2.0); // 6 > 2 * 2.5
        assert_eq!(r.len(), 1);
        assert_eq!(r.diags[0].code, Code::Kn034);
        let mut r2 = Report::new();
        lint_ii(&mut r2, &bounds, 4.0, 2.0); // 4 <= 5: within slack
        assert!(r2.is_empty());
    }
}
