#![forbid(unsafe_code)]
//! # kn-metrics — evaluation metrics and text tables
//!
//! The paper's figure of merit is **percentage parallelism**
//! (`Sp = (s - p) / s * 100`, after \[Cytron84\]): how much of the
//! sequential execution time parallel execution removed. 0 means "no
//! faster than sequential", 100 would mean "free". (The TR prints the
//! formula as `(s - p/s) * 100`, an obvious typo — `(5-3)/5 = 40%` is the
//! value the paper derives for Figure 7.)
//!
//! Also here: small summary statistics and the fixed-width text tables the
//! CLI and EXPERIMENTS.md use to render results the way the paper prints
//! Table 1.

use std::fmt::Write as _;

/// Percentage parallelism `(s - p)/s * 100`. Negative when the "parallel"
/// execution is slower than sequential (possible under bad schedules /
/// heavy communication).
pub fn percentage_parallelism(sequential: u64, parallel: u64) -> f64 {
    if sequential == 0 {
        return 0.0;
    }
    (sequential as f64 - parallel as f64) / sequential as f64 * 100.0
}

/// Percentage parallelism clamped at 0, the way the paper reports Table 1
/// (DOACROSS entries that cannot pipeline are printed as 0.0).
pub fn percentage_parallelism_clamped(sequential: u64, parallel: u64) -> f64 {
    percentage_parallelism(sequential, parallel).max(0.0)
}

/// Speedup `s / p`.
pub fn speedup(sequential: u64, parallel: u64) -> f64 {
    if parallel == 0 {
        return f64::INFINITY;
    }
    sequential as f64 / parallel as f64
}

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub stddev: f64,
    pub n: usize,
}

/// Compute [`Stats`] (population standard deviation).
pub fn stats(xs: &[f64]) -> Stats {
    if xs.is_empty() {
        return Stats {
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            stddev: 0.0,
            n: 0,
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Stats {
        mean,
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        stddev: var.sqrt(),
        n: xs.len(),
    }
}

/// Column alignment for [`TextTable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    Left,
    Right,
}

/// A minimal fixed-width text-table builder (no dependencies, locked
/// stdout-friendly single `String` output).
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with right-aligned columns by default.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            aligns: vec![Align::Right; headers.len()],
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Set one column's alignment.
    pub fn align(mut self, col: usize, a: Align) -> Self {
        self.aligns[col] = a;
        self
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with a header underline, columns padded to content width.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String], width: &[usize], aligns: &[Align]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{:<w$}", c, w = width[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>w$}", c, w = width[i]);
                    }
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers, &width, &self.aligns);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            emit(&mut out, r, &width, &self.aligns);
        }
        out
    }
}

/// Format a float with one decimal, the paper's Table 1 style.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_percentages_from_the_paper() {
        // Sequential 5/iter, ours 3/iter -> 40%; DOACROSS 5/iter -> 0%.
        assert_eq!(percentage_parallelism(500, 300), 40.0);
        assert_eq!(percentage_parallelism(500, 500), 0.0);
    }

    #[test]
    fn negative_parallelism_is_representable_and_clampable() {
        assert_eq!(percentage_parallelism(100, 150), -50.0);
        assert_eq!(percentage_parallelism_clamped(100, 150), 0.0);
    }

    #[test]
    fn speedup_basics() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 0), f64::INFINITY);
    }

    #[test]
    fn zero_sequential_guard() {
        assert_eq!(percentage_parallelism(0, 10), 0.0);
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.stddev - 1.118).abs() < 1e-3);
    }

    #[test]
    fn stats_empty() {
        assert_eq!(stats(&[]).n, 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["loop", "x", "doacross"]).align(0, Align::Left);
        t.row(vec!["0".into(), "51.8".into(), "26.8".into()]);
        t.row(vec!["10".into(), "48.5".into(), "15.7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("loop"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("51.8"));
        // Right-aligned numeric column: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn f1_formats() {
        assert_eq!(f1(47.4046), "47.4");
        assert_eq!(f1(2.9), "2.9");
    }
}
