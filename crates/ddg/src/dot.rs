//! GraphViz (DOT) export, for debugging and for the repository's
//! documentation. Loop-carried edges are dashed and annotated with their
//! distance; subset classification (if supplied) colours the nodes the way
//! the paper's Figure 1 shades them. [`to_dot_annotated`] additionally
//! works on raw, possibly-invalid parts and paints lint findings red
//! (`kn lint --annotate`).

use crate::classify::{Classification, SubsetKind};
use crate::graph::{Ddg, Edge, EdgeId, Node, NodeId};
use std::fmt::Write as _;

/// Escape a string for use inside a double-quoted DOT label: backslashes,
/// quotes, and newlines would otherwise break (or inject) attributes.
fn esc_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

/// Render the graph as DOT. `classes` optionally colours nodes by subset.
pub fn to_dot(g: &Ddg, classes: Option<&Classification>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph ddg {{");
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(s, "  node [shape=circle fontname=\"Helvetica\"];");
    for v in g.node_ids() {
        let node = g.node(v);
        let fill = match classes.map(|c| c.kind_of(v)) {
            Some(SubsetKind::FlowIn) => "lightblue",
            Some(SubsetKind::Cyclic) => "lightsalmon",
            Some(SubsetKind::FlowOut) => "lightgreen",
            None => "white",
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\nlat={}\" style=filled fillcolor={}];",
            v.0,
            esc_label(&node.name),
            node.latency,
            fill
        );
    }
    for eid in g.edge_ids() {
        let e = g.edge(eid);
        if e.distance == 0 {
            let _ = writeln!(s, "  {} -> {};", e.src.0, e.dst.0);
        } else {
            let _ = writeln!(
                s,
                "  {} -> {} [style=dashed label=\"d{}\"];",
                e.src.0, e.dst.0, e.distance
            );
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render raw `(nodes, edges)` parts — valid or not — with lint findings
/// highlighted: flagged nodes and edges are drawn red with a thick pen,
/// and an edge endpoint outside the node range gets a dashed red
/// placeholder node, so `kn lint --annotate` can picture exactly what it
/// rejected.
pub fn to_dot_annotated(
    nodes: &[Node],
    edges: &[Edge],
    flag_nodes: &[NodeId],
    flag_edges: &[EdgeId],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph ddg {{");
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(s, "  node [shape=circle fontname=\"Helvetica\"];");
    for (i, node) in nodes.iter().enumerate() {
        let v = NodeId(i as u32);
        let extra = if flag_nodes.contains(&v) {
            " color=red penwidth=2 fontcolor=red"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\nlat={}\" style=filled fillcolor=white{}];",
            v.0,
            esc_label(&node.name),
            node.latency,
            extra
        );
    }
    // Placeholder nodes for dangling endpoints, deduplicated.
    let mut missing: Vec<NodeId> = Vec::new();
    for e in edges {
        for v in [e.src, e.dst] {
            if v.index() >= nodes.len() && !missing.contains(&v) {
                missing.push(v);
                let _ = writeln!(
                    s,
                    "  m{} [label=\"?\" style=dashed color=red fontcolor=red];",
                    v.0
                );
            }
        }
    }
    let endpoint = |v: NodeId| -> String {
        if v.index() >= nodes.len() {
            format!("m{}", v.0)
        } else {
            v.0.to_string()
        }
    };
    for (i, e) in edges.iter().enumerate() {
        let id = EdgeId(i as u32);
        let mut attrs: Vec<String> = Vec::new();
        if e.distance != 0 {
            attrs.push("style=dashed".into());
            attrs.push(format!("label=\"d{}\"", e.distance));
        }
        if flag_edges.contains(&id) || e.src.index() >= nodes.len() || e.dst.index() >= nodes.len()
        {
            attrs.push("color=red".into());
            attrs.push("penwidth=2".into());
        }
        if attrs.is_empty() {
            let _ = writeln!(s, "  {} -> {};", endpoint(e.src), endpoint(e.dst));
        } else {
            let _ = writeln!(
                s,
                "  {} -> {} [{}];",
                endpoint(e.src),
                endpoint(e.dst),
                attrs.join(" ")
            );
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::graph::DdgBuilder;

    fn sample() -> Ddg {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node_lat("y", 3);
        b.dep(x, y);
        b.carried(y, x);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, None);
        assert!(dot.contains("digraph ddg"));
        assert!(dot.contains("label=\"x\\nlat=1\""));
        assert!(dot.contains("label=\"y\\nlat=3\""));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("style=dashed label=\"d1\""));
    }

    #[test]
    fn dot_colours_by_class() {
        let g = sample();
        let c = classify(&g);
        let dot = to_dot(&g, Some(&c));
        assert!(dot.contains("lightsalmon"), "cyclic nodes coloured: {dot}");
    }

    #[test]
    fn dot_escapes_hostile_labels() {
        let mut b = DdgBuilder::new();
        b.node("a\"];evil[label=\"");
        b.node("multi\nline\\name");
        let g = b.build().unwrap();
        let dot = to_dot(&g, None);
        // The quote cannot close the label attribute…
        assert!(
            dot.contains("label=\"a\\\"];evil[label=\\\"\\nlat=1\""),
            "{dot}"
        );
        // …and real newlines/backslashes become DOT escapes.
        assert!(
            dot.contains("label=\"multi\\nline\\\\name\\nlat=1\""),
            "{dot}"
        );
        assert!(!dot.contains("a\"];evil"), "raw quote leaked: {dot}");
    }

    #[test]
    fn annotated_dot_paints_findings_red() {
        let nodes = vec![
            Node {
                name: "a".into(),
                latency: 1,
                stmt: None,
            },
            Node {
                name: "b".into(),
                latency: 0,
                stmt: None,
            },
        ];
        let edges = vec![
            Edge {
                src: NodeId(0),
                dst: NodeId(1),
                distance: 1,
                cost: None,
            },
            Edge {
                src: NodeId(0),
                dst: NodeId(u32::MAX),
                distance: 0,
                cost: None,
            },
        ];
        let dot = to_dot_annotated(&nodes, &edges, &[NodeId(1)], &[EdgeId(1)]);
        // The zero-latency node is red; the sound node is not.
        assert!(dot.contains("1 [label=\"b\\nlat=0\" style=filled fillcolor=white color=red"));
        assert!(dot.contains("0 [label=\"a\\nlat=1\" style=filled fillcolor=white];"));
        // The dangling endpoint gets a red placeholder and a red edge.
        assert!(dot.contains("m4294967295 [label=\"?\""), "{dot}");
        assert!(
            dot.contains("0 -> m4294967295 [color=red penwidth=2];"),
            "{dot}"
        );
        // The carried edge keeps its dashed style.
        assert!(dot.contains("0 -> 1 [style=dashed label=\"d1\"];"), "{dot}");
    }
}
