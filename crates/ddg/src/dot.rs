//! GraphViz (DOT) export, for debugging and for the repository's
//! documentation. Loop-carried edges are dashed and annotated with their
//! distance; subset classification (if supplied) colours the nodes the way
//! the paper's Figure 1 shades them.

use crate::classify::{Classification, SubsetKind};
use crate::graph::Ddg;
use std::fmt::Write as _;

/// Render the graph as DOT. `classes` optionally colours nodes by subset.
pub fn to_dot(g: &Ddg, classes: Option<&Classification>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph ddg {{");
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(s, "  node [shape=circle fontname=\"Helvetica\"];");
    for v in g.node_ids() {
        let node = g.node(v);
        let fill = match classes.map(|c| c.kind_of(v)) {
            Some(SubsetKind::FlowIn) => "lightblue",
            Some(SubsetKind::Cyclic) => "lightsalmon",
            Some(SubsetKind::FlowOut) => "lightgreen",
            None => "white",
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\nlat={}\" style=filled fillcolor={}];",
            v.0, node.name, node.latency, fill
        );
    }
    for eid in g.edge_ids() {
        let e = g.edge(eid);
        if e.distance == 0 {
            let _ = writeln!(s, "  {} -> {};", e.src.0, e.dst.0);
        } else {
            let _ = writeln!(
                s,
                "  {} -> {} [style=dashed label=\"d{}\"];",
                e.src.0, e.dst.0, e.distance
            );
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::graph::DdgBuilder;

    fn sample() -> Ddg {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node_lat("y", 3);
        b.dep(x, y);
        b.carried(y, x);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, None);
        assert!(dot.contains("digraph ddg"));
        assert!(dot.contains("label=\"x\\nlat=1\""));
        assert!(dot.contains("label=\"y\\nlat=3\""));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("style=dashed label=\"d1\""));
    }

    #[test]
    fn dot_colours_by_class() {
        let g = sample();
        let c = classify(&g);
        let dot = to_dot(&g, Some(&c));
        assert!(dot.contains("lightsalmon"), "cyclic nodes coloured: {dot}");
    }
}
