//! Loop unwinding.
//!
//! Two distinct uses, both from the paper:
//!
//! 1. **Distance normalization** ([`normalize_distances`]): the scheduler
//!    assumes all dependence distances are 0 or 1; "if the dependence
//!    distances are greater than one, we can reduce them down to one or zero
//!    by unwinding the loop properly, as explained in \[MuSi87\]" (§2.1).
//!    Unrolling by factor `u ≥ max distance` maps edge `(v → w, d)` to
//!    edges `(v_j → w_{(j+d) mod u}, ⌊(j+d)/u⌋)`, whose new distances are
//!    all ≤ 1.
//! 2. **Finite instance DAGs** ([`unwind_instances`]): materializing the
//!    instances `(v, i)` for `i < iters`, used by tests and by the
//!    simulator/baselines to execute a bounded number of iterations.

use crate::graph::{Ddg, DdgBuilder, Distance, EdgeId, NodeId};

/// Result of [`unroll`]: the unrolled graph plus, for each new node, which
/// original node it copies and its copy index (the iteration offset within
/// the unrolled super-iteration).
#[derive(Clone, Debug)]
pub struct Unrolled {
    pub graph: Ddg,
    /// `copy_of[new.index()] = (original node, copy index 0..factor)`.
    pub copy_of: Vec<(NodeId, u32)>,
    /// Unroll factor used.
    pub factor: u32,
}

/// Unroll the loop body `factor` times. Iteration `I` of the new loop
/// performs iterations `factor*I + j` (for `j = 0..factor`) of the original.
pub fn unroll(g: &Ddg, factor: u32) -> Unrolled {
    assert!(factor >= 1, "unroll factor must be >= 1");
    let mut b = DdgBuilder::new();
    let mut copy_of = Vec::with_capacity(g.node_count() * factor as usize);
    let mut ids = vec![Vec::with_capacity(factor as usize); g.node_count()];
    for j in 0..factor {
        for v in g.node_ids() {
            let node = g.node(v);
            let name = format!("{}@{}", node.name, j);
            let id = b
                .node_full(name, node.latency, node.stmt.clone())
                .expect("generated names are unique");
            copy_of.push((v, j));
            ids[v.index()].push(id);
        }
    }
    for eid in g.edge_ids() {
        let e = *g.edge(eid);
        for j in 0..factor {
            let tgt_copy = (j + e.distance) % factor;
            let new_dist: Distance = (j + e.distance) / factor;
            b.edge_full(
                ids[e.src.index()][j as usize],
                ids[e.dst.index()][tgt_copy as usize],
                new_dist,
                e.cost,
            );
        }
    }
    let graph = b.build().expect("unrolling preserves validity");
    Unrolled {
        graph,
        copy_of,
        factor,
    }
}

/// Normalize all dependence distances to `{0, 1}` by unrolling if needed.
/// Returns the (possibly trivial) unrolling.
pub fn normalize_distances(g: &Ddg) -> Unrolled {
    let d = g.max_distance();
    if d <= 1 {
        Unrolled {
            graph: g.clone(),
            copy_of: g.node_ids().map(|v| (v, 0)).collect(),
            factor: 1,
        }
    } else {
        unroll(g, d)
    }
}

/// One instance `(node, iteration)` of the unwound loop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstanceId {
    pub node: NodeId,
    pub iter: u32,
}

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.node.0, self.iter)
    }
}

/// A finite unwinding of the loop: all instances `(v, i)` with `i < iters`
/// and all dependence edges landing inside the range.
#[derive(Clone, Debug)]
pub struct InstanceDag {
    node_count: usize,
    iters: u32,
    /// For each instance (dense index), its predecessor instances with the
    /// originating static edge.
    preds: Vec<Vec<(InstanceId, EdgeId)>>,
    succs: Vec<Vec<(InstanceId, EdgeId)>>,
}

impl InstanceDag {
    #[inline]
    fn dense(&self, inst: InstanceId) -> usize {
        inst.iter as usize * self.node_count + inst.node.index()
    }

    /// Number of iterations materialized.
    pub fn iters(&self) -> u32 {
        self.iters
    }

    /// Total number of instances.
    pub fn len(&self) -> usize {
        self.node_count * self.iters as usize
    }

    /// True when no instances were materialized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All instances, iteration-major.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        (0..self.iters).flat_map(move |i| {
            (0..self.node_count as u32).map(move |v| InstanceId {
                node: NodeId(v),
                iter: i,
            })
        })
    }

    /// Predecessor instances of `inst` (within range).
    pub fn preds(&self, inst: InstanceId) -> &[(InstanceId, EdgeId)] {
        &self.preds[self.dense(inst)]
    }

    /// Successor instances of `inst` (within range).
    pub fn succs(&self, inst: InstanceId) -> &[(InstanceId, EdgeId)] {
        &self.succs[self.dense(inst)]
    }

    /// Earliest-start schedule assuming zero communication delay and
    /// unbounded processors: `asap[(v,i)] = max over preds of their finish`.
    /// This is exactly the "idealized pattern" premise of Perfect Pipelining
    /// the paper builds on (§1). Returns start times, iteration-major dense.
    pub fn asap(&self, g: &Ddg) -> Vec<u64> {
        let mut start = vec![0u64; self.len()];
        for inst in self.instances() {
            let s = self
                .preds(inst)
                .iter()
                .map(|&(p, _)| start[self.dense(p)] + g.latency(p.node) as u64)
                .max()
                .unwrap_or(0);
            start[self.dense(inst)] = s;
        }
        start
    }

    /// Makespan of the [`InstanceDag::asap`] schedule.
    pub fn asap_makespan(&self, g: &Ddg) -> u64 {
        let start = self.asap(g);
        self.instances()
            .map(|inst| start[self.dense(inst)] + g.latency(inst.node) as u64)
            .max()
            .unwrap_or(0)
    }

    /// Length (latency sum) of the longest dependence path in the unwinding;
    /// paper Lemma 2: a single-Cyclic-subset loop unwound `m` times has a
    /// path of at least `m - 1` nodes.
    pub fn longest_path_nodes(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        let mut best = 0;
        for inst in self.instances() {
            let d = self
                .preds(inst)
                .iter()
                .map(|&(p, _)| depth[self.dense(p)] + 1)
                .max()
                .unwrap_or(1);
            depth[self.dense(inst)] = d.max(1);
            best = best.max(depth[self.dense(inst)]);
        }
        best
    }
}

/// Materialize the instances of `iters` iterations (iterations are numbered
/// from 0; an edge `(u → w, d)` connects `(u, i)` to `(w, i + d)` whenever
/// `i + d < iters`).
pub fn unwind_instances(g: &Ddg, iters: u32) -> InstanceDag {
    let node_count = g.node_count();
    let len = node_count * iters as usize;
    let mut preds = vec![Vec::new(); len];
    let mut succs = vec![Vec::new(); len];
    for i in 0..iters {
        for eid in g.edge_ids() {
            let e = *g.edge(eid);
            let tgt_iter = i as u64 + e.distance as u64;
            if tgt_iter >= iters as u64 {
                continue;
            }
            let src = InstanceId {
                node: e.src,
                iter: i,
            };
            let dst = InstanceId {
                node: e.dst,
                iter: tgt_iter as u32,
            };
            let s_dense = i as usize * node_count + e.src.index();
            let d_dense = tgt_iter as usize * node_count + e.dst.index();
            succs[s_dense].push((dst, eid));
            preds[d_dense].push((src, eid));
        }
    }
    InstanceDag {
        node_count,
        iters,
        preds,
        succs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    fn dist2_loop() -> Ddg {
        // x -> y (intra); y -> x at distance 2.
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        b.dep_dist(y, x, 2);
        b.build().unwrap()
    }

    #[test]
    fn unroll_normalizes_distance_two() {
        let g = dist2_loop();
        assert!(!g.distances_normalized());
        let u = normalize_distances(&g);
        assert_eq!(u.factor, 2);
        assert!(u.graph.distances_normalized());
        assert_eq!(u.graph.node_count(), 4);
        // Edge count preserved per copy: 2 static edges * 2 copies.
        assert_eq!(u.graph.edge_count(), 4);
    }

    #[test]
    fn unroll_copy_mapping() {
        let g = dist2_loop();
        let u = unroll(&g, 2);
        // Layout: copy-major [x@0, y@0, x@1, y@1].
        assert_eq!(u.copy_of[0], (NodeId(0), 0));
        assert_eq!(u.copy_of[1], (NodeId(1), 0));
        assert_eq!(u.copy_of[2], (NodeId(0), 1));
        assert_eq!(u.copy_of[3], (NodeId(1), 1));
        assert_eq!(u.graph.name(NodeId(2)), "x@1");
    }

    #[test]
    fn unroll_edge_targets() {
        let g = dist2_loop();
        let u = unroll(&g, 2);
        // y@0 -(d2 orig)-> x@0 of the *next* super-iteration:
        // (0 + 2) mod 2 = copy 0, distance (0+2)/2 = 1.
        let y0 = u.graph.find("y@0").unwrap();
        let x0 = u.graph.find("x@0").unwrap();
        let e = u
            .graph
            .out_edges(y0)
            .find(|(_, e)| e.dst == x0)
            .expect("edge y@0 -> x@0");
        assert_eq!(e.1.distance, 1);
        // y@1 -> x@1 at distance (1+2)/2 = 1 with copy (1+2)%2=1.
        let y1 = u.graph.find("y@1").unwrap();
        let x1 = u.graph.find("x@1").unwrap();
        let e = u
            .graph
            .out_edges(y1)
            .find(|(_, e)| e.dst == x1)
            .expect("edge y@1 -> x@1");
        assert_eq!(e.1.distance, 1);
    }

    #[test]
    fn normalize_is_identity_when_already_normal() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.carried(x, x);
        let g = b.build().unwrap();
        let u = normalize_distances(&g);
        assert_eq!(u.factor, 1);
        assert_eq!(u.graph.node_count(), 1);
    }

    #[test]
    fn instance_dag_edges_in_range() {
        let g = dist2_loop();
        let dag = unwind_instances(&g, 4);
        assert_eq!(dag.len(), 8);
        // (y,0) -> (x,2) present; (y,3) -> (x,5) absent (out of range).
        let y0 = InstanceId {
            node: NodeId(1),
            iter: 0,
        };
        assert!(dag.succs(y0).iter().any(|&(d, _)| d
            == InstanceId {
                node: NodeId(0),
                iter: 2
            }));
        let y3 = InstanceId {
            node: NodeId(1),
            iter: 3,
        };
        assert!(dag.succs(y3).is_empty());
    }

    #[test]
    fn asap_zero_comm_chain() {
        // x(lat 2) -> y(lat 3), and x -> x carried: iteration i's x starts
        // at 2*i; y starts when its x finishes.
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        let y = b.node_lat("y", 3);
        b.dep(x, y);
        b.carried(x, x);
        let g = b.build().unwrap();
        let dag = unwind_instances(&g, 3);
        let asap = dag.asap(&g);
        // dense layout: iter-major [x0,y0,x1,y1,x2,y2]
        assert_eq!(asap, vec![0, 2, 2, 4, 4, 6]);
        assert_eq!(dag.asap_makespan(&g), 9);
    }

    #[test]
    fn lemma2_unwound_path_length() {
        // Single cyclic subset (self-loop): unwinding m times must contain
        // a path of at least m-1 edges, i.e. m nodes.
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.carried(x, x);
        let g = b.build().unwrap();
        for m in [2u32, 5, 9] {
            let dag = unwind_instances(&g, m);
            assert!(dag.longest_path_nodes() >= m as usize - 1);
        }
    }

    #[test]
    fn unrolled_semantics_instance_isomorphism() {
        // The instance DAG of the original for 2k iterations must be
        // isomorphic to the instance DAG of the 2-unrolled loop for k
        // super-iterations (edge multiset over (node,iter) pairs).
        let g = dist2_loop();
        let u = unroll(&g, 2);
        let orig = unwind_instances(&g, 6);
        let unrl = unwind_instances(&u.graph, 3);
        let mut orig_edges: Vec<(NodeId, u32, NodeId, u32)> = Vec::new();
        for inst in orig.instances() {
            for &(p, _) in orig.preds(inst) {
                orig_edges.push((p.node, p.iter, inst.node, inst.iter));
            }
        }
        let mut unrl_edges: Vec<(NodeId, u32, NodeId, u32)> = Vec::new();
        for inst in unrl.instances() {
            for &(p, _) in unrl.preds(inst) {
                let (pn, pj) = u.copy_of[p.node.index()];
                let (dn, dj) = u.copy_of[inst.node.index()];
                unrl_edges.push((pn, p.iter * 2 + pj, dn, inst.iter * 2 + dj));
            }
        }
        orig_edges.sort();
        unrl_edges.sort();
        assert_eq!(orig_edges, unrl_edges);
    }

    #[test]
    fn zero_iters_is_empty() {
        let g = dist2_loop();
        let dag = unwind_instances(&g, 0);
        assert!(dag.is_empty());
        assert_eq!(dag.iters(), 0);
    }
}
