//! A small line-oriented text format for dependence graphs, so workloads
//! can be stored in files and fed to the CLI without recompiling.
//!
//! ```text
//! # Figure 7 (paper)
//! node A lat=1 stmt="A[I] = A[I-1] * E[I-1]"
//! node B
//! edge A -> A dist=1
//! edge E -> A dist=1
//! edge A -> B
//! edge X -> Y dist=1 cost=2   # per-edge communication cost override
//! ```
//!
//! `dist` defaults to 0, `lat` to 1. Node names may contain any
//! non-whitespace characters except `"`. Parsing and rendering round-trip.

use crate::graph::{Ddg, DdgBuilder, Edge, Node, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parse errors with 1-based line numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    UnknownDirective { line: usize, word: String },
    BadNode { line: usize, reason: String },
    BadEdge { line: usize, reason: String },
    UnknownNodeName { line: usize, name: String },
    Graph(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownDirective { line, word } => {
                write!(f, "line {line}: unknown directive {word:?}")
            }
            ParseError::BadNode { line, reason } => write!(f, "line {line}: bad node: {reason}"),
            ParseError::BadEdge { line, reason } => write!(f, "line {line}: bad edge: {reason}"),
            ParseError::UnknownNodeName { line, name } => {
                write!(f, "line {line}: unknown node {name:?}")
            }
            ParseError::Graph(e) => write!(f, "graph invalid: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Strip a trailing `# comment` (not inside quotes).
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse the text format into a validated graph.
pub fn parse(input: &str) -> Result<Ddg, ParseError> {
    let mut b = DdgBuilder::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("node") => {
                let name = words
                    .next()
                    .ok_or(ParseError::BadNode {
                        line: line_no,
                        reason: "missing name".into(),
                    })?
                    .to_string();
                let mut lat = 1u32;
                let mut stmt = None;
                // `stmt="…"` may contain spaces: re-split on the raw tail.
                // Slice past the `node` keyword first — searching the whole
                // line for the name would mis-anchor on names like "d" or
                // "e" that also occur inside the keyword itself.
                let after_kw = line["node".len()..].trim_start();
                let tail = after_kw[name.len()..].trim();
                for part in split_attrs(tail) {
                    if let Some(v) = part.strip_prefix("lat=") {
                        lat = v.parse().map_err(|_| ParseError::BadNode {
                            line: line_no,
                            reason: format!("bad latency {v:?}"),
                        })?;
                    } else if let Some(v) = part.strip_prefix("stmt=") {
                        stmt = Some(v.trim_matches('"').to_string());
                    } else if !part.is_empty() {
                        return Err(ParseError::BadNode {
                            line: line_no,
                            reason: format!("unknown attribute {part:?}"),
                        });
                    }
                }
                let id = b
                    .node_full(name.clone(), lat, stmt)
                    .map_err(|e| ParseError::BadNode {
                        line: line_no,
                        reason: e.to_string(),
                    })?;
                names.insert(name, id);
            }
            Some("edge") => {
                let src = words.next().ok_or(ParseError::BadEdge {
                    line: line_no,
                    reason: "missing source".into(),
                })?;
                let arrow = words.next();
                if arrow != Some("->") {
                    return Err(ParseError::BadEdge {
                        line: line_no,
                        reason: format!("expected '->', got {arrow:?}"),
                    });
                }
                let dst = words.next().ok_or(ParseError::BadEdge {
                    line: line_no,
                    reason: "missing destination".into(),
                })?;
                let mut dist = 0u32;
                let mut cost = None;
                for part in words {
                    if let Some(v) = part.strip_prefix("dist=") {
                        dist = v.parse().map_err(|_| ParseError::BadEdge {
                            line: line_no,
                            reason: format!("bad dist {v:?}"),
                        })?;
                    } else if let Some(v) = part.strip_prefix("cost=") {
                        cost = Some(v.parse().map_err(|_| ParseError::BadEdge {
                            line: line_no,
                            reason: format!("bad cost {v:?}"),
                        })?);
                    } else {
                        return Err(ParseError::BadEdge {
                            line: line_no,
                            reason: format!("unknown attribute {part:?}"),
                        });
                    }
                }
                let s = *names.get(src).ok_or(ParseError::UnknownNodeName {
                    line: line_no,
                    name: src.into(),
                })?;
                let d = *names.get(dst).ok_or(ParseError::UnknownNodeName {
                    line: line_no,
                    name: dst.into(),
                })?;
                b.edge_full(s, d, dist, cost);
            }
            Some(word) => {
                return Err(ParseError::UnknownDirective {
                    line: line_no,
                    word: word.into(),
                })
            }
            None => unreachable!("empty lines skipped"),
        }
    }
    b.build().map_err(|e| ParseError::Graph(e.to_string()))
}

/// Parse the text format into **raw, unvalidated** parts.
///
/// Syntax errors still fail (unknown directives, malformed attributes),
/// but every *semantic* rule [`parse`] enforces is deliberately skipped so
/// a lint pass (`kn-verify`) can report them as structured diagnostics
/// instead of a hard error:
///
/// * `lat=0` is kept (lint: KN001);
/// * duplicate node names are kept as distinct nodes (KN002) — edges
///   resolve to the *first* node of that name;
/// * an edge endpoint naming an undeclared node becomes a dangling
///   [`NodeId`] past the node range (KN003), mirroring the
///   declare-before-use rule of [`parse`];
/// * nothing is checked about cycles or emptiness (KN004–KN006).
pub fn parse_parts(input: &str) -> Result<(Vec<Node>, Vec<Edge>), ParseError> {
    let mut nodes: Vec<Node> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    // Distinct undeclared names get stable synthetic ids past the final
    // node range; `u32::MAX` counts down so they stay dangling no matter
    // how many real nodes follow.
    let mut unknown: HashMap<String, NodeId> = HashMap::new();
    let mut next_unknown = u32::MAX;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("node") => {
                let name = words
                    .next()
                    .ok_or(ParseError::BadNode {
                        line: line_no,
                        reason: "missing name".into(),
                    })?
                    .to_string();
                let mut lat = 1u32;
                let mut stmt = None;
                let after_kw = line["node".len()..].trim_start();
                let tail = after_kw[name.len()..].trim();
                for part in split_attrs(tail) {
                    if let Some(v) = part.strip_prefix("lat=") {
                        lat = v.parse().map_err(|_| ParseError::BadNode {
                            line: line_no,
                            reason: format!("bad latency {v:?}"),
                        })?;
                    } else if let Some(v) = part.strip_prefix("stmt=") {
                        stmt = Some(v.trim_matches('"').to_string());
                    } else if !part.is_empty() {
                        return Err(ParseError::BadNode {
                            line: line_no,
                            reason: format!("unknown attribute {part:?}"),
                        });
                    }
                }
                let id = NodeId(nodes.len() as u32);
                nodes.push(Node {
                    name: name.clone(),
                    latency: lat,
                    stmt,
                });
                names.entry(name).or_insert(id);
            }
            Some("edge") => {
                let src = words.next().ok_or(ParseError::BadEdge {
                    line: line_no,
                    reason: "missing source".into(),
                })?;
                let arrow = words.next();
                if arrow != Some("->") {
                    return Err(ParseError::BadEdge {
                        line: line_no,
                        reason: format!("expected '->', got {arrow:?}"),
                    });
                }
                let dst = words.next().ok_or(ParseError::BadEdge {
                    line: line_no,
                    reason: "missing destination".into(),
                })?;
                let mut dist = 0u32;
                let mut cost = None;
                for part in words {
                    if let Some(v) = part.strip_prefix("dist=") {
                        dist = v.parse().map_err(|_| ParseError::BadEdge {
                            line: line_no,
                            reason: format!("bad dist {v:?}"),
                        })?;
                    } else if let Some(v) = part.strip_prefix("cost=") {
                        cost = Some(v.parse().map_err(|_| ParseError::BadEdge {
                            line: line_no,
                            reason: format!("bad cost {v:?}"),
                        })?);
                    } else {
                        return Err(ParseError::BadEdge {
                            line: line_no,
                            reason: format!("unknown attribute {part:?}"),
                        });
                    }
                }
                let mut resolve = |name: &str| {
                    names.get(name).copied().unwrap_or_else(|| {
                        *unknown.entry(name.to_string()).or_insert_with(|| {
                            let id = NodeId(next_unknown);
                            next_unknown -= 1;
                            id
                        })
                    })
                };
                let s = resolve(src);
                let d = resolve(dst);
                edges.push(Edge {
                    src: s,
                    dst: d,
                    distance: dist,
                    cost,
                });
            }
            Some(word) => {
                return Err(ParseError::UnknownDirective {
                    line: line_no,
                    word: word.into(),
                })
            }
            None => unreachable!("empty lines skipped"),
        }
    }
    Ok((nodes, edges))
}

/// Split `lat=1 stmt="a b c"` into attribute words, keeping quoted values
/// intact.
fn split_attrs(tail: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in tail.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Render a graph in the text format (round-trips through [`parse`]).
pub fn render(g: &Ddg) -> String {
    let mut s = String::new();
    for v in g.node_ids() {
        let n = g.node(v);
        let _ = write!(s, "node {}", n.name);
        if n.latency != 1 {
            let _ = write!(s, " lat={}", n.latency);
        }
        if let Some(stmt) = &n.stmt {
            let _ = write!(s, " stmt=\"{stmt}\"");
        }
        let _ = writeln!(s);
    }
    for eid in g.edge_ids() {
        let e = g.edge(eid);
        let _ = write!(s, "edge {} -> {}", g.name(e.src), g.name(e.dst));
        if e.distance != 0 {
            let _ = write!(s, " dist={}", e.distance);
        }
        if let Some(c) = e.cost {
            let _ = write!(s, " cost={c}");
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG7: &str = r#"
# Figure 7 (paper)
node A stmt="A[I] = A[I-1] * E[I-1]"
node B
node C
node D lat=1
node E
edge A -> A dist=1
edge E -> A dist=1
edge A -> B
edge B -> C
edge D -> D dist=1
edge C -> D dist=1
edge D -> E
"#;

    #[test]
    fn parses_figure7() {
        let g = parse(FIG7).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(
            g.node(g.find("A").unwrap()).stmt.as_deref(),
            Some("A[I] = A[I-1] * E[I-1]")
        );
        assert_eq!(g.carried_edges().count(), 4);
    }

    #[test]
    fn round_trips() {
        let g = parse(FIG7).unwrap();
        let text = render(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for (a, b) in g.node_ids().zip(g2.node_ids()) {
            assert_eq!(g.node(a), g2.node(b));
        }
        for (a, b) in g.edge_ids().zip(g2.edge_ids()) {
            assert_eq!(g.edge(a), g2.edge(b));
        }
    }

    #[test]
    fn node_names_overlapping_the_keyword_parse_with_attributes() {
        // Regression: the attribute tail used to be anchored by searching
        // the whole line for the name, so a node called "d" (or "e",
        // "o", "no", ...) matched inside the `node` keyword and the
        // attributes were sliced mid-word.
        for name in ["d", "e", "o", "n", "no", "de", "ode"] {
            let text = format!("node {name} lat=2 stmt=\"D[I] = C[I-1] + B[I]\"\n");
            let g = parse(&text).unwrap_or_else(|err| panic!("node {name}: {err}"));
            let id = g.find(name).expect("node present");
            assert_eq!(g.latency(id), 2, "node {name}");
            assert_eq!(g.node(id).stmt.as_deref(), Some("D[I] = C[I-1] + B[I]"));
            let (nodes, _) = parse_parts(&text).unwrap();
            assert_eq!(nodes[0].latency, 2);
        }
    }

    #[test]
    fn per_edge_cost_and_latency() {
        let g = parse("node x lat=3\nnode y\nedge x -> y dist=2 cost=5\n").unwrap();
        assert_eq!(g.latency(g.find("x").unwrap()), 3);
        let e = g.edge(g.edge_ids().next().unwrap());
        assert_eq!(e.distance, 2);
        assert_eq!(e.cost, Some(5));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse("# header\n\nnode a  # trailing\nnode b\nedge a -> b\n").unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn hash_inside_quotes_preserved() {
        let g = parse("node a stmt=\"x # not a comment\"\n").unwrap();
        assert_eq!(g.node(NodeId(0)).stmt.as_deref(), Some("x # not a comment"));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        assert!(matches!(
            parse("node a\nbogus b\n").unwrap_err(),
            ParseError::UnknownDirective { line: 2, .. }
        ));
        assert!(matches!(
            parse("node a\nedge a -> missing\n").unwrap_err(),
            ParseError::UnknownNodeName { line: 2, .. }
        ));
        assert!(matches!(
            parse("node a\nedge a b\n").unwrap_err(),
            ParseError::BadEdge { line: 2, .. }
        ));
        assert!(matches!(
            parse("node a lat=zero\n").unwrap_err(),
            ParseError::BadNode { line: 1, .. }
        ));
    }

    #[test]
    fn invalid_graph_reported() {
        // Distance-0 cycle.
        let err = parse("node a\nnode b\nedge a -> b\nedge b -> a\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(_)));
    }

    #[test]
    fn parse_parts_is_lenient_about_semantics() {
        // Everything parse() rejects semantically comes through raw.
        let (nodes, edges) =
            parse_parts("node a lat=0\nnode a\nedge a -> ghost\nedge a -> a dist=0\n").unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].latency, 0);
        assert_eq!(nodes[1].name, "a");
        assert_eq!(edges.len(), 2);
        // Unknown endpoint: a dangling id past the node range.
        assert!(edges[0].dst.0 as usize >= nodes.len());
        // Duplicate names resolve to the first node.
        assert_eq!(edges[1].src, NodeId(0));
        assert_eq!(edges[1].dst, NodeId(0));
    }

    #[test]
    fn parse_parts_still_rejects_syntax_errors() {
        assert!(matches!(
            parse_parts("nodule a\n").unwrap_err(),
            ParseError::UnknownDirective { line: 1, .. }
        ));
        assert!(matches!(
            parse_parts("node a lat=zero\n").unwrap_err(),
            ParseError::BadNode { line: 1, .. }
        ));
        assert!(matches!(
            parse_parts("node a\nedge a b\n").unwrap_err(),
            ParseError::BadEdge { line: 2, .. }
        ));
    }

    #[test]
    fn parse_parts_matches_parse_on_valid_input() {
        let (nodes, edges) = parse_parts(FIG7).unwrap();
        let g = parse(FIG7).unwrap();
        assert_eq!(nodes.len(), g.node_count());
        assert_eq!(edges.len(), g.edge_count());
        for (i, id) in g.node_ids().enumerate() {
            assert_eq!(&nodes[i], g.node(id));
        }
        for (i, id) in g.edge_ids().enumerate() {
            assert_eq!(&edges[i], g.edge(id));
        }
    }
}
