//! Topological orders.
//!
//! Two notions matter here:
//!
//! * the **intra-iteration order** — a topological sort of the distance-0
//!   subgraph, which is the legal statement order of the loop body (used by
//!   the DOACROSS baseline and the codegen pretty-printer);
//! * the **unwound order** — the order in which the paper's `Cyclic-sched`
//!   visits instances `(v, i)` of the infinitely unwound graph (paper
//!   Figure 3(b): "sorting the graph topologically subject to data
//!   dependences"). That enumeration lives in the scheduler itself because
//!   it is interleaved with scheduling; this module supplies the finite
//!   variant over an [`crate::unwind::InstanceDag`].

use crate::graph::{Ddg, NodeId};

/// Error from topological sorting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoError {
    /// The distance-0 subgraph has a cycle (cannot happen on a validated
    /// [`Ddg`], but kept for defensive API completeness).
    Cyclic(Vec<NodeId>),
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoError::Cyclic(ns) => write!(f, "cycle in distance-0 subgraph: {ns:?}"),
        }
    }
}

impl std::error::Error for TopoError {}

/// True iff the distance-0 subgraph is acyclic (always true for a validated
/// graph; exposed as an oracle for property tests).
pub fn is_intra_acyclic(g: &Ddg) -> bool {
    intra_topo_order(g).is_ok()
}

/// Topological order of the distance-0 subgraph, deterministic: among ready
/// nodes the smallest `NodeId` goes first. This is the "natural" statement
/// order used when a workload does not specify one.
pub fn intra_topo_order(g: &Ddg) -> Result<Vec<NodeId>, TopoError> {
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for v in g.node_ids() {
        indeg[v.index()] = g.intra_in_degree(v);
    }
    // Min-heap on node id for determinism.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = ready.pop() {
        let v = NodeId(v);
        order.push(v);
        for (_, e) in g.out_edges(v) {
            if e.distance == 0 {
                let d = e.dst.index();
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(std::cmp::Reverse(e.dst.0));
                }
            }
        }
    }
    if order.len() != n {
        let stuck: Vec<NodeId> = g.node_ids().filter(|v| indeg[v.index()] > 0).collect();
        return Err(TopoError::Cyclic(stuck));
    }
    Ok(order)
}

/// All topological orders of the distance-0 subgraph (bounded; used by the
/// DOACROSS "optimal reordering" exhaustive search on small bodies, paper
/// Figure 8(b)). Stops after `cap` orders to bound the search.
pub fn all_intra_topo_orders(g: &Ddg, cap: usize) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for v in g.node_ids() {
        indeg[v.index()] = g.intra_in_degree(v);
    }
    let mut out = Vec::new();
    let mut prefix = Vec::with_capacity(n);
    let mut used = vec![false; n];
    enumerate(g, &mut indeg, &mut used, &mut prefix, &mut out, cap);
    out
}

fn enumerate(
    g: &Ddg,
    indeg: &mut [usize],
    used: &mut [bool],
    prefix: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if prefix.len() == g.node_count() {
        out.push(prefix.clone());
        return;
    }
    for v in g.node_ids() {
        if used[v.index()] || indeg[v.index()] != 0 {
            continue;
        }
        used[v.index()] = true;
        prefix.push(v);
        for (_, e) in g.out_edges(v) {
            if e.distance == 0 {
                indeg[e.dst.index()] -= 1;
            }
        }
        enumerate(g, indeg, used, prefix, out, cap);
        for (_, e) in g.out_edges(v) {
            if e.distance == 0 {
                indeg[e.dst.index()] += 1;
            }
        }
        prefix.pop();
        used[v.index()] = false;
        if out.len() >= cap {
            return;
        }
    }
}

/// Length (in latency) of the longest path in the distance-0 subgraph:
/// the intra-iteration critical path.
pub fn intra_critical_path(g: &Ddg) -> u64 {
    let order = intra_topo_order(g).expect("validated graph");
    let mut finish = vec![0u64; g.node_count()];
    let mut best = 0;
    for &v in &order {
        let start = g
            .in_edges(v)
            .filter(|(_, e)| e.distance == 0)
            .map(|(_, e)| finish[e.src.index()])
            .max()
            .unwrap_or(0);
        finish[v.index()] = start + g.latency(v) as u64;
        best = best.max(finish[v.index()]);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    fn diamond() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("a");
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        b.dep(a, x);
        b.dep(a, y);
        b.dep(x, z);
        b.dep(y, z);
        b.build().unwrap()
    }

    #[test]
    fn intra_order_respects_deps() {
        let g = diamond();
        let order = intra_topo_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, &v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (_, e) in g.intra_edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn intra_order_ignores_carried_edges() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        b.carried(y, x); // would be a cycle if distances were ignored
        let g = b.build().unwrap();
        let order = intra_topo_order(&g).unwrap();
        assert_eq!(order, vec![x, y]);
    }

    #[test]
    fn deterministic_smallest_id_first() {
        let mut b = DdgBuilder::new();
        let _x = b.node("x");
        let _y = b.node("y");
        let _z = b.node("z");
        let g = b.build().unwrap();
        let order = intra_topo_order(&g).unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn all_orders_of_diamond() {
        let g = diamond();
        let orders = all_intra_topo_orders(&g, 100);
        // a first, z last, x/y in either order: exactly 2.
        assert_eq!(orders.len(), 2);
        for o in &orders {
            assert_eq!(o[0], NodeId(0));
            assert_eq!(o[3], NodeId(3));
        }
    }

    #[test]
    fn all_orders_respects_cap() {
        let mut b = DdgBuilder::new();
        for i in 0..6 {
            b.node(format!("n{i}"));
        }
        let g = b.build().unwrap();
        // 6 independent nodes: 720 orders, capped at 10.
        let orders = all_intra_topo_orders(&g, 10);
        assert_eq!(orders.len(), 10);
    }

    #[test]
    fn critical_path_diamond() {
        let g = diamond();
        assert_eq!(intra_critical_path(&g), 3); // a -> x|y -> z
    }

    #[test]
    fn critical_path_with_latencies() {
        let mut b = DdgBuilder::new();
        let a = b.node_lat("a", 3);
        let c = b.node_lat("c", 5);
        b.dep(a, c);
        let g = b.build().unwrap();
        assert_eq!(intra_critical_path(&g), 8);
    }

    #[test]
    fn is_intra_acyclic_true_for_valid() {
        assert!(is_intra_acyclic(&diamond()));
    }

    #[test]
    fn singleton_graph_topo_order() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let g = b.build().unwrap();
        assert_eq!(intra_topo_order(&g).unwrap(), vec![x]);
        assert_eq!(all_intra_topo_orders(&g, 10), vec![vec![x]]);
        assert_eq!(intra_critical_path(&g), 1);
    }

    #[test]
    fn disconnected_components_interleave_smallest_id_first() {
        // Two islands a -> b and c -> d: the deterministic order is by
        // smallest ready id, so islands interleave rather than group.
        let mut b = DdgBuilder::new();
        let a = b.node("a");
        let bb = b.node("b");
        let c = b.node("c");
        let d = b.node("d");
        b.dep(a, bb);
        b.dep(c, d);
        let g = b.build().unwrap();
        assert_eq!(intra_topo_order(&g).unwrap(), vec![a, bb, c, d]);
        // Both islands' constraints hold in every enumerated order.
        for order in all_intra_topo_orders(&g, 100) {
            let pos = |v: NodeId| order.iter().position(|&w| w == v).unwrap();
            assert!(pos(a) < pos(bb) && pos(c) < pos(d), "{order:?}");
        }
        // Critical path is the longer island's path (both are 2 here).
        assert_eq!(intra_critical_path(&g), 2);
    }

    #[test]
    fn duplicate_parallel_edges_keep_topo_functions_correct() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node_lat("y", 3);
        b.dep(x, y);
        b.dep(x, y); // duplicate must not double-count degrees
        let g = b.build().unwrap();
        assert!(is_intra_acyclic(&g));
        assert_eq!(intra_topo_order(&g).unwrap(), vec![x, y]);
        assert_eq!(all_intra_topo_orders(&g, 10).len(), 1);
        assert_eq!(intra_critical_path(&g), 4);
    }

    #[test]
    fn carried_self_loop_is_still_intra_acyclic() {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        b.carried(x, x);
        let g = b.build().unwrap();
        assert!(is_intra_acyclic(&g));
        assert_eq!(intra_topo_order(&g).unwrap(), vec![x]);
        assert_eq!(intra_critical_path(&g), 2);
    }
}
