//! Strongly-connected components (Tarjan, iterative).
//!
//! The paper's Lemma 1 states that every non-empty Cyclic subset contains at
//! least one strongly connected subgraph; the SCCs also drive the recurrence
//! lower bound used by tests (`cycle latency / cycle distance`, the classic
//! recurrence-constrained initiation interval) and the DOACROSS delay
//! computation.

use crate::graph::{Ddg, NodeId};

/// One strongly connected component: its member nodes in discovery order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scc {
    pub nodes: Vec<NodeId>,
}

impl Scc {
    /// A component is *trivial* when it is a single node with no self-edge;
    /// trivial SCCs do not constrain the steady-state rate.
    pub fn is_trivial(&self, g: &Ddg) -> bool {
        self.nodes.len() == 1 && {
            let v = self.nodes[0];
            !g.successors(v).any(|s| s == v)
        }
    }
}

/// Tarjan's algorithm over **all** edges (any distance), iterative so that
/// deep graphs cannot overflow the stack. Components are returned in reverse
/// topological order of the condensation (callees before callers), each with
/// members sorted ascending for determinism.
pub fn strongly_connected_components(g: &Ddg) -> Vec<Scc> {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS frame: (node, iterator position into its successor list).
    let mut call: Vec<(u32, usize)> = Vec::new();
    let succs: Vec<Vec<u32>> = (0..n)
        .map(|v| g.successors(NodeId(v as u32)).map(|s| s.0).collect())
        .collect();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos < succs[v as usize].len() {
                let w = succs[v as usize][*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    sccs.push(Scc { nodes: comp });
                }
            }
        }
    }
    sccs
}

/// The condensation: for each node, the index of its SCC in the vector
/// returned by [`strongly_connected_components`].
pub fn condensation(g: &Ddg) -> (Vec<Scc>, Vec<usize>) {
    let sccs = strongly_connected_components(g);
    let mut of = vec![usize::MAX; g.node_count()];
    for (i, c) in sccs.iter().enumerate() {
        for &v in &c.nodes {
            of[v.index()] = i;
        }
    }
    (sccs, of)
}

/// The recurrence-constrained lower bound on cycles-per-iteration for the
/// loop: `max over directed cycles (total latency / total distance)`.
///
/// Computed exactly via Karp-style iteration on each non-trivial SCC
/// (maximum cycle ratio by binary search over Bellman-Ford feasibility).
/// Used by tests as an oracle: no valid schedule's steady-state initiation
/// interval can beat this bound, communication aside.
pub fn recurrence_bound(g: &Ddg) -> f64 {
    let (sccs, _) = condensation(g);
    let mut best: f64 = 0.0;
    for scc in &sccs {
        if scc.is_trivial(g) && scc.nodes.len() == 1 {
            // might still have a self-loop; is_trivial excludes it
            continue;
        }
        let (sub, _back) = g.induced_subgraph(&scc.nodes);
        best = best.max(max_cycle_ratio(&sub));
    }
    best
}

/// Maximum over directed cycles of (sum latency)/(sum distance) for a
/// strongly connected graph, by parametric binary search: ratio `r` is
/// feasible iff the graph with edge weights `lat(src) - r * distance` has a
/// positive cycle. Distances on cycles are ≥ 1 by DDG validity.
fn max_cycle_ratio(g: &Ddg) -> f64 {
    let total_lat: f64 = g.body_latency() as f64;
    let (mut lo, mut hi) = (0.0f64, total_lat.max(1.0));
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if has_positive_cycle(g, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

fn has_positive_cycle(g: &Ddg, r: f64) -> bool {
    // Bellman-Ford on longest paths with weights lat(src) - r*dist;
    // a further relaxation after n rounds means a positive cycle.
    let n = g.node_count();
    let mut dist = vec![0.0f64; n];
    for round in 0..=n {
        let mut changed = false;
        for eid in g.edge_ids() {
            let e = *g.edge(eid);
            let w = g.latency(e.src) as f64 - r * e.distance as f64;
            let cand = dist[e.src.index()] + w;
            if cand > dist[e.dst.index()] + 1e-12 {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n && changed {
            return true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    /// Companion to the dense-renumbering pin in `graph.rs`: the SCC and
    /// condensation machinery on a fission-piece subgraph must see only the
    /// piece's dense ids — `of` is total over the piece and every member id
    /// indexes inside it.
    #[test]
    fn scc_on_extracted_piece_uses_dense_ids() {
        // Two recurrences A<->B and C<->D plus a bridge; extract the
        // *second* recurrence (original ids 2, 3 — nonzero-based).
        let mut b = DdgBuilder::new();
        let a = b.node("a");
        let bb = b.node("b");
        let c = b.node("c");
        let d = b.node("d");
        b.dep(a, bb);
        b.carried(bb, a);
        b.dep(c, d);
        b.carried(d, c);
        b.dep(bb, c);
        let g = b.build().unwrap();
        let (piece, back) = g.induced_subgraph(&[c, d]);
        assert_eq!(back, vec![c, d]);
        let (sccs, of) = condensation(&piece);
        assert_eq!(sccs.len(), 1, "c<->d is one recurrence");
        assert_eq!(of.len(), piece.node_count(), "of is total over the piece");
        for &comp in &of {
            assert!(comp < sccs.len());
        }
        for scc in &sccs {
            for v in &scc.nodes {
                assert!(v.index() < piece.node_count(), "stale original id {v}");
            }
        }
        assert!((recurrence_bound(&piece) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_self_loop_is_one_scc() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.carried(x, x);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert!(!sccs[0].is_trivial(&g));
    }

    #[test]
    fn chain_is_all_trivial() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        b.dep(x, y);
        b.dep(y, z);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|s| s.is_trivial(&g)));
    }

    #[test]
    fn two_cycles_found() {
        let mut b = DdgBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        let d = b.node("d");
        let e = b.node("e");
        b.dep(a, c);
        b.carried(c, a); // cycle {a,c}
        b.dep(d, e);
        b.carried(e, d); // cycle {d,e}
        b.dep(c, d); // bridge
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        let nontrivial: Vec<_> = sccs.iter().filter(|s| !s.is_trivial(&g)).collect();
        assert_eq!(nontrivial.len(), 2);
        assert!(nontrivial.iter().all(|s| s.nodes.len() == 2));
    }

    #[test]
    fn condensation_covers_all_nodes() {
        let mut b = DdgBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        b.dep(a, c);
        b.carried(c, a);
        let g = b.build().unwrap();
        let (sccs, of) = condensation(&g);
        assert_eq!(sccs.len(), 1);
        assert!(of.iter().all(|&i| i == 0));
    }

    #[test]
    fn figure1_cyclic_contains_scc_lemma1() {
        // Lemma 1: the Cyclic subset contains at least one SCC.
        let mut b = DdgBuilder::new();
        let e = b.node("E");
        let i = b.node("I");
        let k = b.node("K");
        let l = b.node("L");
        b.dep(e, i);
        b.carried(i, e);
        b.dep(i, k);
        b.dep(k, l);
        b.carried(l, l);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        let nontrivial = sccs.iter().filter(|s| !s.is_trivial(&g)).count();
        assert_eq!(nontrivial, 2, "(E,I) and (L), as the paper says");
    }

    #[test]
    fn recurrence_bound_figure7() {
        // Figure 7: cycles A->A (lat 1 / dist 1), D->D (1/1),
        // A->B->C->D->E->A (lat 5 / dist 2) => bound 2.5.
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        let g = b.build().unwrap();
        let r = recurrence_bound(&g);
        assert!((r - 2.5).abs() < 1e-6, "got {r}");
    }

    #[test]
    fn recurrence_bound_self_loop_latency() {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 4);
        b.carried(x, x);
        let g = b.build().unwrap();
        let r = recurrence_bound(&g);
        assert!((r - 4.0).abs() < 1e-6, "got {r}");
    }

    #[test]
    fn recurrence_bound_dag_is_zero() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        assert_eq!(recurrence_bound(&g), 0.0);
    }

    #[test]
    fn distance_two_cycle_ratio() {
        // x -(d2)-> x with latency 3: ratio 1.5 per iteration.
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 3);
        b.dep_dist(x, x, 2);
        let g = b.build().unwrap();
        let r = recurrence_bound(&g);
        assert!((r - 1.5).abs() < 1e-6, "got {r}");
    }

    #[test]
    fn singleton_graph_is_one_trivial_scc() {
        let mut b = DdgBuilder::new();
        b.node("x");
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert!(sccs[0].is_trivial(&g));
        assert_eq!(recurrence_bound(&g), 0.0);
    }

    #[test]
    fn disconnected_components_yield_independent_sccs() {
        // Two islands: a 2-cycle {a, b} and an isolated chain x -> y.
        let mut b = DdgBuilder::new();
        let a = b.node_lat("a", 2);
        let bb = b.node("b");
        let x = b.node("x");
        let y = b.node("y");
        b.dep(a, bb);
        b.carried(bb, a);
        b.dep(x, y);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        let nontrivial: Vec<_> = sccs.iter().filter(|s| !s.is_trivial(&g)).collect();
        assert_eq!(nontrivial.len(), 1);
        let mut members = nontrivial[0].nodes.clone();
        members.sort();
        assert_eq!(members, vec![a, bb]);
        // The bound comes from the cyclic island alone: (2+1)/1.
        assert!((recurrence_bound(&g) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_parallel_edges_do_not_change_sccs_or_bound() {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        let y = b.node("y");
        b.dep(x, y);
        b.dep(x, y); // duplicate
        b.carried(y, x);
        b.carried(y, x); // duplicate
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert!(!sccs[0].is_trivial(&g));
        assert!((recurrence_bound(&g) - 3.0).abs() < 1e-6);
    }
}
