//! Core data-dependence-graph representation.
//!
//! A [`Ddg`] models one loop body. Each [`Node`] is a "unit of computation"
//! (paper §2.1) — a single operation or a whole procedure, chosen so that its
//! execution time is within the same order of magnitude as communication
//! cost. Each [`Edge`] is a data dependence with a **distance**: the number
//! of iterations separating producer and consumer (0 = same iteration).

use std::fmt;

/// Index of a node within its [`Ddg`]. Nodes are dense, 0-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Index of an edge within its [`Ddg`]. Edges are dense, 0-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

/// Estimated execution time of a node, in machine cycles. Always ≥ 1.
pub type Latency = u32;

/// Dependence distance in iterations. 0 = intra-iteration ("simple
/// dependence" in the paper's §4 terminology), ≥ 1 = loop-carried.
pub type Distance = u32;

impl NodeId {
    /// The node's dense index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge's dense index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A unit of computation in the loop body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Human-readable name ("A", "op3", ...). Unique within the graph.
    pub name: String,
    /// Estimated execution time in cycles (paper: the latency vector `lv`).
    pub latency: Latency,
    /// Optional source-statement text, carried through to code generation
    /// (e.g. `A[I] = A[I-1] * E[I-1]`).
    pub stmt: Option<String>,
}

/// A data dependence from `src` to `dst`, `distance` iterations apart:
/// instance `(src, i)` must complete before instance `(dst, i + distance)`
/// may start (plus communication delay when they run on different
/// processors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub distance: Distance,
    /// Per-edge communication cost override. `None` means "use the machine's
    /// global upper bound `k`". The paper allows each communication edge its
    /// own cost with `k` as the upper bound (§2.3).
    pub cost: Option<u32>,
}

/// Errors detected by [`Ddg::validate`] / [`DdgBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdgError {
    /// A node was declared with latency 0.
    ZeroLatency(NodeId),
    /// Two nodes share a name.
    DuplicateName(String),
    /// An edge references a node id out of range.
    DanglingEdge(EdgeId),
    /// The distance-0 subgraph has a cycle: a value would depend on itself
    /// within a single iteration, which no legal loop body can express.
    IntraIterationCycle(Vec<NodeId>),
    /// Graph has no nodes.
    Empty,
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::ZeroLatency(n) => write!(f, "node {n} has zero latency"),
            DdgError::DuplicateName(s) => write!(f, "duplicate node name {s:?}"),
            DdgError::DanglingEdge(e) => write!(f, "edge {e} references a missing node"),
            DdgError::IntraIterationCycle(ns) => {
                write!(f, "distance-0 subgraph has a cycle through {ns:?}")
            }
            DdgError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for DdgError {}

/// A validated data-dependence graph for one loop body.
///
/// Construction goes through [`DdgBuilder`], which enforces the structural
/// invariants; a `Ddg` in hand is always well-formed.
#[derive(Clone, Debug)]
pub struct Ddg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node, in insertion order.
    succs: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node, in insertion order.
    preds: Vec<Vec<EdgeId>>,
}

impl Ddg {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All node ids, in dense order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids, in dense order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Edge payload.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + Clone {
        self.succs[n.index()]
            .iter()
            .map(move |&e| (e, &self.edges[e.index()]))
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + Clone {
        self.preds[n.index()]
            .iter()
            .map(move |&e| (e, &self.edges[e.index()]))
    }

    /// Successor node ids of `n` (may repeat if parallel edges exist).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(|(_, e)| e.dst)
    }

    /// Predecessor node ids of `n` (may repeat if parallel edges exist).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(|(_, e)| e.src)
    }

    /// In-degree counting **all** edges (any distance).
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.preds[n.index()].len()
    }

    /// Out-degree counting **all** edges (any distance).
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succs[n.index()].len()
    }

    /// In-degree restricted to distance-0 edges: the number of dependences a
    /// node must wait for *within* its own iteration.
    pub fn intra_in_degree(&self, n: NodeId) -> usize {
        self.in_edges(n).filter(|(_, e)| e.distance == 0).count()
    }

    /// Latency of node `n`.
    #[inline]
    pub fn latency(&self, n: NodeId) -> Latency {
        self.nodes[n.index()].latency
    }

    /// Sum of all node latencies: the sequential execution time of one
    /// iteration (the `s / N` in the paper's percentage-parallelism metric).
    pub fn body_latency(&self) -> u64 {
        self.nodes.iter().map(|n| n.latency as u64).sum()
    }

    /// Largest dependence distance in the graph (0 for a loop-free DAG).
    pub fn max_distance(&self) -> Distance {
        self.edges.iter().map(|e| e.distance).max().unwrap_or(0)
    }

    /// True iff every dependence distance is 0 or 1 (the normal form the
    /// scheduler requires; see [`crate::unwind::normalize_distances`]).
    pub fn distances_normalized(&self) -> bool {
        self.max_distance() <= 1
    }

    /// Look up a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Name of node `n`.
    pub fn name(&self, n: NodeId) -> &str {
        &self.nodes[n.index()].name
    }

    /// Loop-carried edges (distance ≥ 1), the paper's "lcd"s.
    pub fn carried_edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edge_ids()
            .map(move |e| (e, &self.edges[e.index()]))
            .filter(|(_, e)| e.distance >= 1)
    }

    /// Intra-iteration edges (distance 0), the paper's "sd"s.
    pub fn intra_edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edge_ids()
            .map(move |e| (e, &self.edges[e.index()]))
            .filter(|(_, e)| e.distance == 0)
    }

    /// Revalidate the invariants (always true for a built graph; used by
    /// property tests as a sanity oracle).
    pub fn validate(&self) -> Result<(), DdgError> {
        validate_parts(&self.nodes, &self.edges)
    }

    /// Extract the subgraph induced by `keep` (a set of node ids), remapping
    /// node ids densely. Returns the subgraph and the mapping
    /// `new NodeId index -> old NodeId`. Edges with either endpoint outside
    /// `keep` are dropped.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Ddg, Vec<NodeId>) {
        let mut old_to_new = vec![None; self.node_count()];
        let mut builder = DdgBuilder::new();
        let mut back = Vec::with_capacity(keep.len());
        for (new_idx, &old) in keep.iter().enumerate() {
            let node = self.node(old);
            let id = builder
                .node_full(node.name.clone(), node.latency, node.stmt.clone())
                .expect("names unique in source graph");
            debug_assert_eq!(id.index(), new_idx);
            old_to_new[old.index()] = Some(id);
            back.push(old);
        }
        for e in &self.edges {
            if let (Some(s), Some(d)) = (old_to_new[e.src.index()], old_to_new[e.dst.index()]) {
                builder.edge_full(s, d, e.distance, e.cost);
            }
        }
        let g = builder.build().expect("subgraph of a valid graph is valid");
        (g, back)
    }
}

fn validate_parts(nodes: &[Node], edges: &[Edge]) -> Result<(), DdgError> {
    if nodes.is_empty() {
        return Err(DdgError::Empty);
    }
    let mut seen = std::collections::HashSet::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.latency == 0 {
            return Err(DdgError::ZeroLatency(NodeId(i as u32)));
        }
        if !seen.insert(n.name.as_str()) {
            return Err(DdgError::DuplicateName(n.name.clone()));
        }
    }
    for (i, e) in edges.iter().enumerate() {
        if e.src.index() >= nodes.len() || e.dst.index() >= nodes.len() {
            return Err(DdgError::DanglingEdge(EdgeId(i as u32)));
        }
    }
    // The distance-0 subgraph must be a DAG: Kahn's algorithm.
    let n = nodes.len();
    let mut indeg = vec![0usize; n];
    for e in edges.iter().filter(|e| e.distance == 0) {
        indeg[e.dst.index()] += 1;
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut emitted = 0usize;
    while let Some(v) = stack.pop() {
        emitted += 1;
        for e in edges
            .iter()
            .filter(|e| e.distance == 0 && e.src.index() == v)
        {
            let d = e.dst.index();
            indeg[d] -= 1;
            if indeg[d] == 0 {
                stack.push(d);
            }
        }
    }
    if emitted != n {
        let cyclic: Vec<NodeId> = (0..n)
            .filter(|&i| indeg[i] > 0)
            .map(|i| NodeId(i as u32))
            .collect();
        return Err(DdgError::IntraIterationCycle(cyclic));
    }
    Ok(())
}

/// Incremental builder for [`Ddg`]. Collects nodes and edges, then
/// [`DdgBuilder::build`] validates the result.
#[derive(Clone, Debug, Default)]
pub struct DdgBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl DdgBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with unit latency and no statement text.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_full(name.into(), 1, None)
            .expect("caller must use unique names; use node_full for fallible insert")
    }

    /// Add a node with an explicit latency.
    pub fn node_lat(&mut self, name: impl Into<String>, latency: Latency) -> NodeId {
        let name = name.into();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name,
            latency,
            stmt: None,
        });
        id
    }

    /// Add a node with full payload; errors (at `build`) surface duplicate
    /// names, but the builder also pre-checks so tests get early feedback.
    pub fn node_full(
        &mut self,
        name: String,
        latency: Latency,
        stmt: Option<String>,
    ) -> Result<NodeId, DdgError> {
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(DdgError::DuplicateName(name));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name,
            latency,
            stmt,
        });
        Ok(id)
    }

    /// Attach statement text to an existing node (for codegen).
    pub fn stmt(&mut self, n: NodeId, text: impl Into<String>) -> &mut Self {
        self.nodes[n.index()].stmt = Some(text.into());
        self
    }

    /// Add an intra-iteration dependence (distance 0).
    pub fn dep(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        self.edge_full(src, dst, 0, None)
    }

    /// Add a loop-carried dependence with distance 1.
    pub fn carried(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        self.edge_full(src, dst, 1, None)
    }

    /// Add a dependence with an arbitrary distance.
    pub fn dep_dist(&mut self, src: NodeId, dst: NodeId, distance: Distance) -> EdgeId {
        self.edge_full(src, dst, distance, None)
    }

    /// Add a dependence with full payload.
    pub fn edge_full(
        &mut self,
        src: NodeId,
        dst: NodeId,
        distance: Distance,
        cost: Option<u32>,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            src,
            dst,
            distance,
            cost,
        });
        id
    }

    /// The raw, not-yet-validated parts accumulated so far. This is the
    /// input shape the `kn-verify` lint pass works on: it can diagnose
    /// graphs that [`build`](Self::build) would reject.
    pub fn parts(&self) -> (&[Node], &[Edge]) {
        (&self.nodes, &self.edges)
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Ddg, DdgError> {
        validate_parts(&self.nodes, &self.edges)?;
        let n = self.nodes.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            succs[e.src.index()].push(EdgeId(i as u32));
            preds[e.dst.index()].push(EdgeId(i as u32));
        }
        Ok(Ddg {
            nodes: self.nodes,
            edges: self.edges,
            succs,
            preds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 7 loop:
    /// ```text
    /// FOR I = 1 TO N
    ///   A: A[I] = A[I-1] * E[I-1]
    ///   B: B[I] = A[I]
    ///   C: C[I] = B[I]
    ///   D: D[I] = D[I-1] * C[I-1]
    ///   E: E[I] = D[I]
    /// ENDFOR
    /// ```
    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    #[test]
    fn builds_figure7() {
        let g = figure7();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.body_latency(), 5);
        assert!(g.distances_normalized());
        assert_eq!(g.max_distance(), 1);
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = figure7();
        let a = g.find("A").unwrap();
        let e = g.find("E").unwrap();
        // A has preds {A (carried), E (carried)} and succs {A (carried), B}.
        assert_eq!(g.in_degree(a), 2);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.intra_in_degree(a), 0);
        let b = g.find("B").unwrap();
        assert_eq!(g.intra_in_degree(b), 1);
        assert!(g.successors(e).any(|s| s == a));
        assert!(g.predecessors(a).any(|p| p == e));
    }

    #[test]
    fn edge_kind_partitions() {
        let g = figure7();
        assert_eq!(g.carried_edges().count(), 4);
        assert_eq!(g.intra_edges().count(), 3);
        assert_eq!(
            g.carried_edges().count() + g.intra_edges().count(),
            g.edge_count()
        );
    }

    #[test]
    fn rejects_intra_iteration_cycle() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        b.dep(y, x);
        match b.build() {
            Err(DdgError::IntraIterationCycle(ns)) => {
                assert_eq!(ns.len(), 2);
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn accepts_carried_self_loop() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.carried(x, x);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_zero_latency() {
        let mut b = DdgBuilder::new();
        b.node_lat("x", 0);
        assert_eq!(b.build().unwrap_err(), DdgError::ZeroLatency(NodeId(0)));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = DdgBuilder::new();
        b.node("x");
        assert!(b.node_full("x".into(), 1, None).is_err());
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(DdgBuilder::new().build().unwrap_err(), DdgError::Empty);
    }

    #[test]
    fn find_by_name() {
        let g = figure7();
        assert_eq!(g.find("D"), Some(NodeId(3)));
        assert_eq!(g.find("Z"), None);
        assert_eq!(g.name(NodeId(3)), "D");
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = figure7();
        let keep = vec![g.find("A").unwrap(), g.find("B").unwrap()];
        let (sub, back) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 2);
        // Edges kept: A->A (carried), A->B (intra). E->A dropped (E absent).
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(back, keep);
        assert_eq!(sub.name(NodeId(0)), "A");
        sub.validate().unwrap();
    }

    /// Regression pin for the fission path: a *non-contiguous,
    /// non-monotone* keep set must come back with ids renumbered densely
    /// `0..keep.len()` in keep order, in release builds too — per-piece
    /// scheduling, SCC analysis, and the certifier all index arrays by
    /// `NodeId` and silently corrupt on a gap.
    #[test]
    fn induced_subgraph_renumbers_densely_on_noncontiguous_keep() {
        let g = figure7(); // ids A=0 B=1 C=2 D=3 E=4
        let keep = vec![NodeId(4), NodeId(0), NodeId(3)]; // gaps + reordered
        let (sub, back) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        // Dense ids 0..3 exactly, in keep order.
        let ids: Vec<u32> = sub.node_ids().map(|v| v.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(sub.name(NodeId(0)), "E");
        assert_eq!(sub.name(NodeId(1)), "A");
        assert_eq!(sub.name(NodeId(2)), "D");
        assert_eq!(back, keep);
        // Every surviving edge endpoint is a dense id.
        for e in sub.edge_ids() {
            let e = sub.edge(e);
            assert!(e.src.index() < 3 && e.dst.index() < 3);
        }
        // Latencies and statement text travel with the remapped nodes.
        for (new, &old) in back.iter().enumerate() {
            assert_eq!(sub.latency(NodeId(new as u32)), g.latency(old));
            assert_eq!(sub.node(NodeId(new as u32)).stmt, g.node(old).stmt);
        }
        sub.validate().unwrap();
    }

    #[test]
    fn validate_is_idempotent_on_built_graph() {
        let g = figure7();
        g.validate().unwrap();
    }

    #[test]
    fn stmt_text_round_trip() {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        b.stmt(a, "A[I] = A[I-1] * E[I-1]");
        let g = b.build().unwrap();
        assert_eq!(g.node(a).stmt.as_deref(), Some("A[I] = A[I-1] * E[I-1]"));
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(7).to_string(), "e7");
    }
}
