//! The paper's Figure 2 `classification` algorithm.
//!
//! Partitions the nodes of a loop DDG into three disjoint subsets
//! (paper §2.1):
//!
//! * **Flow-in** — a node with no predecessors, or all of whose
//!   predecessors are in Flow-in;
//! * **Flow-out** — a node not in Flow-in with no successors, or all of
//!   whose successors are in Flow-out;
//! * **Cyclic** — everything else.
//!
//! The Cyclic nodes are the ones that determine the loop's steady-state
//! execution time (given enough processors); Flow-in nodes are constrained
//! only by the *latest* time they can run, Flow-out nodes only by the
//! *earliest*. If Cyclic is empty the loop is a DOALL loop — unbounded
//! parallelism is available because no dependence chain grows with the
//! iteration count.
//!
//! Complexity: O(m) in the number of dependence edges, because each edge is
//! inspected a bounded number of times (paper §2.1).

use crate::graph::{Ddg, NodeId};

/// Which of the three subsets a node belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SubsetKind {
    FlowIn,
    Cyclic,
    FlowOut,
}

impl std::fmt::Display for SubsetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubsetKind::FlowIn => write!(f, "Flow-in"),
            SubsetKind::Cyclic => write!(f, "Cyclic"),
            SubsetKind::FlowOut => write!(f, "Flow-out"),
        }
    }
}

/// Result of [`classify`]: the paper's `<Flow-in, Cyclic, Flow-out>` split.
#[derive(Clone, Debug)]
pub struct Classification {
    /// Flow-in node ids, in ascending id order.
    pub flow_in: Vec<NodeId>,
    /// Cyclic node ids, in ascending id order.
    pub cyclic: Vec<NodeId>,
    /// Flow-out node ids, in ascending id order.
    pub flow_out: Vec<NodeId>,
    /// Per-node subset, indexed by `NodeId::index()`.
    pub kind: Vec<SubsetKind>,
}

impl Classification {
    /// Subset of node `n`.
    #[inline]
    pub fn kind_of(&self, n: NodeId) -> SubsetKind {
        self.kind[n.index()]
    }

    /// True iff the loop is a DOALL loop (no Cyclic nodes; paper §2.1).
    pub fn is_doall(&self) -> bool {
        self.cyclic.is_empty()
    }

    /// Number of non-Cyclic nodes (the `L` of the paper's Figure 5 for
    /// Flow-in; Flow-out is symmetric).
    pub fn flow_in_size(&self) -> usize {
        self.flow_in.len()
    }
}

/// Run the paper's Figure 2 `classification` algorithm.
///
/// ```
/// use kn_ddg::{classify, DdgBuilder, SubsetKind};
///
/// // in -> core (self-recurrence) -> out
/// let mut b = DdgBuilder::new();
/// let i = b.node("in");
/// let c = b.node("core");
/// let o = b.node("out");
/// b.dep(i, c);
/// b.carried(c, c);
/// b.dep(c, o);
/// let g = b.build().unwrap();
///
/// let cls = classify(&g);
/// assert_eq!(cls.kind_of(i), SubsetKind::FlowIn);
/// assert_eq!(cls.kind_of(c), SubsetKind::Cyclic);
/// assert_eq!(cls.kind_of(o), SubsetKind::FlowOut);
/// ```
///
/// Implementation notes: the paper's pseudo-code grows Flow-in breadth-first
/// from the root nodes, admitting a successor once *all* of its predecessors
/// are already in Flow-in; then symmetrically grows Flow-out backwards from
/// the non-Flow-in leaves; Cyclic is the remainder. A node with a carried
/// self-dependence is its own predecessor, so it can never enter Flow-in —
/// exactly the behaviour that keeps recurrences in the Cyclic core.
pub fn classify(g: &Ddg) -> Classification {
    let n = g.node_count();
    let mut in_flow_in = vec![false; n];
    let mut in_flow_out = vec![false; n];

    // --- Flow-in fixpoint (steps 1-4 of Figure 2) ---
    // `remaining[v]` = number of predecessors of v not yet known to be in
    // Flow-in. Counting edge multiplicity is harmless: all copies decrement.
    let mut remaining: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut buffer: Vec<NodeId> = g.node_ids().filter(|&v| g.in_degree(v) == 0).collect();
    for &v in &buffer {
        in_flow_in[v.index()] = true;
    }
    while let Some(v) = buffer.pop() {
        for w in g.successors(v) {
            if in_flow_in[w.index()] {
                continue; // parallel edges / diamonds may revisit
            }
            remaining[w.index()] -= 1;
            if remaining[w.index()] == 0 {
                in_flow_in[w.index()] = true;
                buffer.push(w);
            }
        }
    }

    // --- Flow-out fixpoint (steps 5-8 of Figure 2) ---
    let mut remaining_out: Vec<usize> = (0..n).map(|i| g.out_degree(NodeId(i as u32))).collect();
    let mut buffer: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| !in_flow_in[v.index()] && g.out_degree(v) == 0)
        .collect();
    for &v in &buffer {
        in_flow_out[v.index()] = true;
    }
    while let Some(v) = buffer.pop() {
        for w in g.predecessors(v) {
            if in_flow_in[w.index()] || in_flow_out[w.index()] {
                continue;
            }
            remaining_out[w.index()] -= 1;
            if remaining_out[w.index()] == 0 {
                in_flow_out[w.index()] = true;
                buffer.push(w);
            }
        }
    }

    // Subtlety: the Flow-out fixpoint above only *starts* from leaves, but a
    // node all of whose successors are Flow-out may have some successors
    // admitted after it was first inspected; the worklist handles that. A
    // remaining case: a node whose successors are partly Flow-out and partly
    // Flow-in cannot be Flow-out ("all of its successors are in Flow-out"),
    // and indeed its counter never reaches zero because Flow-in successors
    // never decrement it. That matches the paper's definition.

    let mut kind = Vec::with_capacity(n);
    let (mut fi, mut cy, mut fo) = (Vec::new(), Vec::new(), Vec::new());
    for v in g.node_ids() {
        let k = if in_flow_in[v.index()] {
            fi.push(v);
            SubsetKind::FlowIn
        } else if in_flow_out[v.index()] {
            fo.push(v);
            SubsetKind::FlowOut
        } else {
            cy.push(v);
            SubsetKind::Cyclic
        };
        kind.push(k);
    }
    Classification {
        flow_in: fi,
        cyclic: cy,
        flow_out: fo,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    /// The paper's Figure 1 example. Reconstructed adjacency (consistent
    /// with the stated classification): Flow-in = {A,B,C,D,F},
    /// Flow-out = {G,H,J}, Cyclic = {E,I,K,L}; strongly connected
    /// subgraphs (E,I) and (L).
    fn figure1() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        let f = b.node("F");
        let g = b.node("G");
        let h = b.node("H");
        let i = b.node("I");
        let j = b.node("J");
        let k = b.node("K");
        let l = b.node("L");
        // Flow-in DAG feeding the cyclic core.
        b.dep(a, e);
        b.dep(bb, e);
        b.dep(c, f); // C -> F: F has all preds in Flow-in.
        b.dep(d, f);
        b.dep(f, i);
        // Cyclic core: (E, I) strongly connected via a carried back-edge,
        // K fed by the core and feeding L, L with a carried self-loop.
        b.dep(e, i);
        b.carried(i, e);
        b.dep(i, k);
        b.carried(k, i); // K in a cycle with I => Cyclic.
        b.dep(k, l);
        b.carried(l, l);
        // Flow-out tail.
        b.dep(l, g);
        b.dep(g, h);
        b.dep(h, j);
        b.build().unwrap()
    }

    #[test]
    fn figure1_classification_matches_paper() {
        let g = figure1();
        let c = classify(&g);
        let names = |ids: &[NodeId]| -> Vec<&str> { ids.iter().map(|&i| g.name(i)).collect() };
        assert_eq!(names(&c.flow_in), vec!["A", "B", "C", "D", "F"]);
        assert_eq!(names(&c.cyclic), vec!["E", "I", "K", "L"]);
        assert_eq!(names(&c.flow_out), vec!["G", "H", "J"]);
        assert!(!c.is_doall());
    }

    #[test]
    fn pure_dag_is_all_flow_in_hence_doall() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        b.dep(x, y);
        b.carried(y, z); // carried but acyclic: still DOALL by the paper.
        let g = b.build().unwrap();
        let c = classify(&g);
        assert!(c.is_doall());
        assert_eq!(c.flow_in.len(), 3);
        assert!(c.flow_out.is_empty());
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.carried(x, x);
        let g = b.build().unwrap();
        let c = classify(&g);
        assert_eq!(c.kind_of(x), SubsetKind::Cyclic);
    }

    #[test]
    fn figure7_is_all_cyclic() {
        // Figure 7's five nodes all sit on recurrences: A->B->C->D->E->A
        // (with carried links C->D and E->A) plus self-loops on A and D.
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        let g = b.build().unwrap();
        let cls = classify(&g);
        assert_eq!(cls.cyclic.len(), 5);
        assert!(cls.flow_in.is_empty());
        assert!(cls.flow_out.is_empty());
    }

    #[test]
    fn flow_out_needs_all_successors_out() {
        // core -> x, x -> y (leaf), x -> back into core. x must be Cyclic
        // because one successor is Cyclic; y is Flow-out.
        let mut b = DdgBuilder::new();
        let c0 = b.node("c0");
        let c1 = b.node("c1");
        let x = b.node("x");
        let y = b.node("y");
        b.dep(c0, c1);
        b.carried(c1, c0);
        b.dep(c0, x);
        b.dep(x, y);
        b.carried(x, c1); // x participates in the recurrence region
        let g = b.build().unwrap();
        let cls = classify(&g);
        assert_eq!(cls.kind_of(x), SubsetKind::Cyclic);
        assert_eq!(cls.kind_of(y), SubsetKind::FlowOut);
    }

    #[test]
    fn classification_is_a_partition() {
        let g = figure1();
        let c = classify(&g);
        assert_eq!(
            c.flow_in.len() + c.cyclic.len() + c.flow_out.len(),
            g.node_count()
        );
        // kind vector agrees with the lists
        for &v in &c.flow_in {
            assert_eq!(c.kind_of(v), SubsetKind::FlowIn);
        }
        for &v in &c.cyclic {
            assert_eq!(c.kind_of(v), SubsetKind::Cyclic);
        }
        for &v in &c.flow_out {
            assert_eq!(c.kind_of(v), SubsetKind::FlowOut);
        }
    }

    #[test]
    fn flow_in_is_predecessor_closed() {
        let g = figure1();
        let c = classify(&g);
        for &v in &c.flow_in {
            for p in g.predecessors(v) {
                assert_eq!(
                    c.kind_of(p),
                    SubsetKind::FlowIn,
                    "pred of Flow-in must be Flow-in"
                );
            }
        }
    }

    #[test]
    fn flow_out_is_successor_closed() {
        let g = figure1();
        let c = classify(&g);
        for &v in &c.flow_out {
            for s in g.successors(v) {
                assert_eq!(
                    c.kind_of(s),
                    SubsetKind::FlowOut,
                    "succ of Flow-out must be Flow-out"
                );
            }
        }
    }

    #[test]
    fn display_kinds() {
        assert_eq!(SubsetKind::FlowIn.to_string(), "Flow-in");
        assert_eq!(SubsetKind::Cyclic.to_string(), "Cyclic");
        assert_eq!(SubsetKind::FlowOut.to_string(), "Flow-out");
    }
}
