//! Weakly-connected components.
//!
//! The paper assumes the DDG of a loop is connected; "if the graph is not
//! connected, we can simply separate the graph into several connected ones
//! and apply our scheduling algorithm to each of them independently" (§2.1).
//! [`split_components`] performs that separation.

use crate::graph::{Ddg, NodeId};

/// Component index per node (`0..k`), components numbered by smallest
/// member node id.
pub fn components(g: &Ddg) -> (usize, Vec<usize>) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for root in 0..n {
        if comp[root] != usize::MAX {
            continue;
        }
        comp[root] = count;
        stack.push(NodeId(root as u32));
        while let Some(v) = stack.pop() {
            for w in g.successors(v).chain(g.predecessors(v)) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (count, comp)
}

/// True iff the (undirected) dependence graph is connected.
pub fn is_connected(g: &Ddg) -> bool {
    components(g).0 == 1
}

/// Split into connected subgraphs, each with its back-mapping to original
/// node ids (`new index -> old NodeId`). Ordered by smallest member id.
pub fn split_components(g: &Ddg) -> Vec<(Ddg, Vec<NodeId>)> {
    let (k, comp) = components(g);
    let mut member_lists = vec![Vec::new(); k];
    for v in g.node_ids() {
        member_lists[comp[v.index()]].push(v);
    }
    member_lists
        .into_iter()
        .map(|members| g.induced_subgraph(&members))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    #[test]
    fn single_component() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        assert!(is_connected(&g));
        assert_eq!(split_components(&g).len(), 1);
    }

    #[test]
    fn two_components_split() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let p = b.node("p");
        let q = b.node("q");
        b.dep(x, y);
        b.carried(q, p);
        let g = b.build().unwrap();
        assert!(!is_connected(&g));
        let parts = split_components(&g);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0.node_count(), 2);
        assert_eq!(parts[1].0.node_count(), 2);
        // Back-mapping points at originals.
        assert_eq!(parts[0].1, vec![x, y]);
        assert_eq!(parts[1].1, vec![p, q]);
        // Each part keeps its internal edge.
        assert_eq!(parts[0].0.edge_count(), 1);
        assert_eq!(parts[1].0.edge_count(), 1);
    }

    #[test]
    fn direction_does_not_matter_for_connectivity() {
        // x <- y (edge y->x) still connects them.
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(y, x);
        let g = b.build().unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let mut b = DdgBuilder::new();
        b.node("x");
        b.node("y");
        b.node("z");
        let g = b.build().unwrap();
        let (k, comp) = components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp, vec![0, 1, 2]);
    }
}
