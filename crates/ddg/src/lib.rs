#![forbid(unsafe_code)]
//! # kn-ddg — data-dependence graphs for loop parallelization
//!
//! This crate implements the loop model of Kim & Nicolau,
//! *Parallelizing Non-Vectorizable Loops for MIMD machines* (ICPP 1990):
//! a loop is a five-tuple `<V, E, Flow-in, Cyclic, Flow-out>` over a
//! data-dependence graph (DDG) whose nodes are units of computation with an
//! estimated latency and whose edges carry a **dependence distance** (0 for
//! intra-iteration dependences, ≥ 1 for loop-carried dependences).
//!
//! The crate provides:
//!
//! * [`Ddg`] / [`DdgBuilder`] — the graph itself, with structural validation
//!   (the distance-0 subgraph must be acyclic, latencies must be positive);
//! * [`classify()`](classify()) — the paper's Figure 2 algorithm partitioning nodes into
//!   `Flow-in`, `Cyclic` and `Flow-out` subsets;
//! * [`scc`] — Tarjan's strongly-connected components (paper Lemma 1:
//!   every non-empty Cyclic subset contains an SCC);
//! * [`topo`] — topological orders of the intra-iteration subgraph and of
//!   finite unwindings;
//! * [`unwind`] — loop unrolling, used both to normalize dependence
//!   distances greater than one down to `{0, 1}` (per Munshi & Simons 1987,
//!   cited by the paper) and to materialize finite instance DAGs;
//! * [`connect`] — weakly-connected components, so each connected loop can
//!   be scheduled independently (paper §2.1);
//! * [`text`] — a line-oriented file format for graphs (round-tripping
//!   parse/render), used by the CLI;
//! * [`dot`] — GraphViz export for debugging and documentation.
//!
//! Everything downstream (the pattern scheduler, the DOACROSS baseline, the
//! simulator) consumes this representation.

pub mod classify;
pub mod connect;
pub mod dot;
pub mod graph;
pub mod scc;
pub mod text;
pub mod topo;
pub mod unwind;

pub use classify::{classify, Classification, SubsetKind};
pub use connect::{components, split_components};
pub use graph::{Ddg, DdgBuilder, DdgError, Distance, Edge, EdgeId, Latency, Node, NodeId};
pub use scc::{condensation, strongly_connected_components, Scc};
pub use text::{parse as parse_text, render as render_text, ParseError};
pub use topo::{
    all_intra_topo_orders, intra_critical_path, intra_topo_order, is_intra_acyclic, TopoError,
};
pub use unwind::{normalize_distances, unroll, unwind_instances, InstanceDag, InstanceId};
