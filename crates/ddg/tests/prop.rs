//! Property-based tests for the DDG substrate.
//!
//! The generator mirrors the paper's §4 random-loop recipe (random latencies,
//! random intra-iteration and loop-carried dependences), scaled down so each
//! case stays fast. Intra-iteration edges only go from lower to higher node
//! id, which guarantees the distance-0 subgraph is acyclic by construction —
//! the same trick any statement-ordered loop body gives you for free.

use kn_ddg::scc::recurrence_bound;
use kn_ddg::*;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RawLoop {
    latencies: Vec<u32>,
    /// (src, dst) with src < dst — distance 0.
    intra: Vec<(usize, usize)>,
    /// (src, dst, dist>=1) — loop-carried, any direction.
    carried: Vec<(usize, usize, u32)>,
}

fn raw_loop(max_nodes: usize, max_dist: u32) -> impl Strategy<Value = RawLoop> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let lat = proptest::collection::vec(1u32..=3, n);
            let intra = proptest::collection::vec((0..n, 0..n), 0..=2 * n)
                .prop_map(|ps| ps.into_iter().filter(|(a, b)| a < b).collect::<Vec<_>>());
            let carried = proptest::collection::vec((0..n, 0..n, 1u32..=max_dist), 0..=2 * n);
            (lat, intra, carried)
        })
        .prop_map(|(latencies, intra, carried)| RawLoop {
            latencies,
            intra,
            carried,
        })
}

fn build(raw: &RawLoop) -> Ddg {
    let mut b = DdgBuilder::new();
    let ids: Vec<NodeId> = raw
        .latencies
        .iter()
        .enumerate()
        .map(|(i, &l)| b.node_lat(format!("n{i}"), l))
        .collect();
    for &(s, d) in &raw.intra {
        b.dep(ids[s], ids[d]);
    }
    for &(s, d, dist) in &raw.carried {
        b.dep_dist(ids[s], ids[d], dist);
    }
    b.build().expect("construction is valid by design")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn classification_partitions_nodes(raw in raw_loop(16, 3)) {
        let g = build(&raw);
        let c = classify(&g);
        prop_assert_eq!(
            c.flow_in.len() + c.cyclic.len() + c.flow_out.len(),
            g.node_count()
        );
    }

    #[test]
    fn flow_in_closed_under_predecessors(raw in raw_loop(16, 3)) {
        let g = build(&raw);
        let c = classify(&g);
        for &v in &c.flow_in {
            for p in g.predecessors(v) {
                prop_assert_eq!(c.kind_of(p), SubsetKind::FlowIn);
            }
        }
    }

    #[test]
    fn flow_out_closed_under_successors(raw in raw_loop(16, 3)) {
        let g = build(&raw);
        let c = classify(&g);
        for &v in &c.flow_out {
            for s in g.successors(v) {
                prop_assert_eq!(c.kind_of(s), SubsetKind::FlowOut);
            }
        }
    }

    /// Any node inside a non-trivial SCC must be Cyclic: it is its own
    /// ancestor, so it can never be admitted to Flow-in, and its cycle
    /// successor blocks Flow-out admission forever.
    #[test]
    fn scc_members_are_cyclic(raw in raw_loop(16, 3)) {
        let g = build(&raw);
        let c = classify(&g);
        for scc in strongly_connected_components(&g) {
            if !scc.is_trivial(&g) {
                for &v in &scc.nodes {
                    prop_assert_eq!(c.kind_of(v), SubsetKind::Cyclic);
                }
            }
        }
    }

    /// Lemma 1: a non-empty Cyclic subset contains at least one strongly
    /// connected subgraph.
    #[test]
    fn lemma1_cyclic_contains_scc(raw in raw_loop(16, 3)) {
        let g = build(&raw);
        let c = classify(&g);
        if !c.cyclic.is_empty() {
            let in_cyclic = |v: NodeId| c.kind_of(v) == SubsetKind::Cyclic;
            let has = strongly_connected_components(&g)
                .into_iter()
                .any(|s| !s.is_trivial(&g) && s.nodes.iter().all(|&v| in_cyclic(v)));
            prop_assert!(has);
        }
    }

    #[test]
    fn normalization_reaches_unit_distances(raw in raw_loop(10, 4)) {
        let g = build(&raw);
        let u = normalize_distances(&g);
        prop_assert!(u.graph.distances_normalized());
        prop_assert_eq!(
            u.graph.node_count(),
            g.node_count() * u.factor as usize
        );
        u.graph.validate().unwrap();
    }

    /// Unrolling preserves the instance-level dependence structure exactly.
    #[test]
    fn unroll_preserves_instance_semantics(raw in raw_loop(8, 3), factor in 1u32..=3) {
        let g = build(&raw);
        let u = unroll(&g, factor);
        let total = 2 * factor; // compare 2 super-iterations
        let orig = unwind_instances(&g, total);
        let unrl = unwind_instances(&u.graph, 2);
        let mut oe: Vec<(u32, u32, u32, u32)> = Vec::new();
        for inst in orig.instances() {
            for &(p, _) in orig.preds(inst) {
                oe.push((p.node.0, p.iter, inst.node.0, inst.iter));
            }
        }
        let mut ue: Vec<(u32, u32, u32, u32)> = Vec::new();
        for inst in unrl.instances() {
            for &(p, _) in unrl.preds(inst) {
                let (pn, pj) = u.copy_of[p.node.index()];
                let (dn, dj) = u.copy_of[inst.node.index()];
                ue.push((pn.0, p.iter * factor + pj, dn.0, inst.iter * factor + dj));
            }
        }
        oe.sort_unstable();
        ue.sort_unstable();
        prop_assert_eq!(oe, ue);
    }

    /// The zero-communication ASAP schedule can never beat the recurrence
    /// bound asymptotically: makespan over iters >= bound for large iters.
    #[test]
    fn asap_respects_recurrence_bound(raw in raw_loop(8, 2)) {
        let g = build(&raw);
        let iters = 24u32;
        let dag = unwind_instances(&g, iters);
        let makespan = dag.asap_makespan(&g) as f64;
        let bound = recurrence_bound(&g);
        // Steady state: makespan >= bound * (iters - slack) for some slack
        // bounded by the body size; use a generous constant.
        let slack = g.node_count() as f64 + 2.0;
        prop_assert!(
            makespan + 1e-6 >= bound * (iters as f64 - slack),
            "makespan {} vs bound {} * {}", makespan, bound, iters
        );
    }

    #[test]
    fn components_cover_everything(raw in raw_loop(16, 3)) {
        let g = build(&raw);
        let parts = split_components(&g);
        let total: usize = parts.iter().map(|(p, _)| p.node_count()).sum();
        prop_assert_eq!(total, g.node_count());
        let edges: usize = parts.iter().map(|(p, _)| p.edge_count()).sum();
        prop_assert_eq!(edges, g.edge_count());
        for (p, _) in &parts {
            prop_assert!(kn_ddg::connect::is_connected(p));
        }
    }

    #[test]
    fn intra_topo_is_total_and_consistent(raw in raw_loop(16, 3)) {
        let g = build(&raw);
        let order = intra_topo_order(&g).unwrap();
        prop_assert_eq!(order.len(), g.node_count());
        let mut pos = vec![0usize; g.node_count()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (_, e) in g.intra_edges() {
            prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }
}
