pub use kn_core::*;
