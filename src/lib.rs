#![forbid(unsafe_code)]
pub use kn_core::*;
