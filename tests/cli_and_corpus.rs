//! Integration tests for the text-format corpus files and the pieces the
//! CLI builds on: the corpus files must parse to exactly the built-in
//! workloads they mirror.

use mimd_loop_par::ddg::{parse_text, render_text};
use mimd_loop_par::prelude::*;
use mimd_loop_par::workloads as wl;

fn graphs_isomorphic_by_name(a: &mimd_loop_par::ddg::Ddg, b: &mimd_loop_par::ddg::Ddg) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    let mut ae: Vec<(String, String, u32)> = a
        .edge_ids()
        .map(|e| {
            let e = a.edge(e);
            (
                a.name(e.src).to_string(),
                a.name(e.dst).to_string(),
                e.distance,
            )
        })
        .collect();
    let mut be: Vec<(String, String, u32)> = b
        .edge_ids()
        .map(|e| {
            let e = b.edge(e);
            (
                b.name(e.src).to_string(),
                b.name(e.dst).to_string(),
                e.distance,
            )
        })
        .collect();
    ae.sort();
    be.sort();
    ae == be
}

#[test]
fn corpus_figure7_matches_builtin() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/figure7.ddg"))
        .expect("corpus file present");
    let g = parse_text(&text).unwrap();
    let w = wl::figure7();
    assert!(graphs_isomorphic_by_name(&g, &w.graph));
    // And it schedules to the same pattern.
    let m = MachineConfig::new(2, 2);
    let out = cyclic_schedule(&g, &m, &Default::default()).unwrap();
    assert_eq!(out.steady_ii(), 2.5);
}

#[test]
fn corpus_rate_gap_matches_builtin_and_falls_back() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/rate_gap.ddg"))
        .expect("corpus file present");
    let g = parse_text(&text).unwrap();
    assert!(graphs_isomorphic_by_name(&g, &wl::rate_gap().graph));
    let m = MachineConfig::new(2, 1);
    let out = cyclic_schedule(&g, &m, &Default::default()).unwrap();
    assert!(
        out.pattern().is_none(),
        "the counter-example never patterns"
    );
}

#[test]
fn corpus_livermore5_schedules_at_recurrence_bound() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/corpus/livermore5.ddg"
    ))
    .expect("corpus file present");
    let g = parse_text(&text).unwrap();
    let m = MachineConfig::new(4, 2);
    let out = cyclic_schedule(&g, &m, &Default::default()).unwrap();
    assert_eq!(out.steady_ii(), 3.0, "pure recurrence: II = bound = 3");
    // DOACROSS cannot do better either (negative control).
    let da = doacross_schedule(&g, &m, 50, &Default::default()).unwrap();
    assert!(da.makespan() >= 150);
}

#[test]
fn every_builtin_workload_round_trips_through_text() {
    for w in [
        wl::figure3(),
        wl::figure7(),
        wl::cytron86(),
        wl::livermore18(),
        wl::livermore5(),
        wl::livermore23(),
        wl::elliptic(),
        wl::doall(),
        wl::rate_gap(),
    ] {
        let text = render_text(&w.graph);
        let back = parse_text(&text).expect(w.name);
        assert!(graphs_isomorphic_by_name(&w.graph, &back), "{}", w.name);
        // Latencies and statement text survive too.
        for v in w.graph.node_ids() {
            let u = back.find(w.graph.name(v)).unwrap();
            assert_eq!(w.graph.node(v).latency, back.node(u).latency, "{}", w.name);
            assert_eq!(w.graph.node(v).stmt, back.node(u).stmt, "{}", w.name);
        }
    }
}
