//! End-to-end pipeline tests over the whole workload corpus: schedule →
//! validate → simulate → execute on real threads → compare values.

use mimd_loop_par::prelude::*;
use mimd_loop_par::runtime::{run_sequential, run_threaded, Semantics};
use mimd_loop_par::sim;
use mimd_loop_par::workloads as wl;

fn corpus() -> Vec<wl::Workload> {
    vec![
        wl::figure3(),
        wl::figure7(),
        wl::cytron86(),
        wl::livermore18(),
        wl::elliptic(),
        wl::doall(),
        wl::rate_gap(),
    ]
}

#[test]
fn every_workload_schedules_and_validates() {
    let iters = 24;
    for w in corpus() {
        let m = MachineConfig::new(w.procs, w.k);
        let s = schedule_loop(&w.graph, &m, iters, &Default::default()).expect(w.name);
        s.program.check_complete(&w.graph).expect(w.name);
        let table = ScheduleTable::from_timed(&s.timing);
        table.validate(&w.graph, &m).expect(w.name);
        assert_eq!(
            table.len(),
            w.graph.node_count() * iters as usize,
            "{}",
            w.name
        );
    }
}

#[test]
fn stable_simulation_equals_static_timing_everywhere() {
    // The scheduler promises times under estimated costs; the simulator
    // must reproduce them exactly when actual = estimated (mm = 1).
    let iters = 20;
    for w in corpus() {
        let m = MachineConfig::new(w.procs, w.k);
        let s = schedule_loop(&w.graph, &m, iters, &Default::default()).expect(w.name);
        let simres =
            sim::simulate(&s.program, &w.graph, &m, &TrafficModel::stable(1)).expect(w.name);
        assert_eq!(simres.makespan, s.timing.makespan, "{}", w.name);
        for (inst, &(p, t)) in &s.timing.start {
            assert_eq!(simres.start[inst], (p, t), "{} {inst}", w.name);
        }
    }
}

#[test]
fn fluctuating_traffic_never_speeds_things_up() {
    let iters = 20;
    for w in corpus() {
        let m = MachineConfig::new(w.procs, w.k);
        let s = schedule_loop(&w.graph, &m, iters, &Default::default()).expect(w.name);
        let base = sim::simulate(&s.program, &w.graph, &m, &TrafficModel::stable(1))
            .unwrap()
            .makespan;
        for mm in [2u32, 5] {
            let noisy = sim::simulate(&s.program, &w.graph, &m, &TrafficModel { mm, seed: 7 })
                .unwrap()
                .makespan;
            assert!(noisy >= base, "{} mm={mm}: {noisy} < {base}", w.name);
        }
    }
}

#[test]
fn threaded_execution_matches_sequential_for_all_workloads() {
    let iters = 40;
    for w in corpus() {
        let m = MachineConfig::new(w.procs, w.k);
        let s = schedule_loop(&w.graph, &m, iters, &Default::default()).expect(w.name);
        let sem = Semantics::hashing(&w.graph);
        let par = run_threaded(&w.graph, &sem, &s.program).expect(w.name);
        let seq = run_sequential(&w.graph, &sem, iters);
        assert_eq!(par, seq, "{}", w.name);
    }
}

#[test]
fn doacross_baseline_schedules_and_validates_everywhere() {
    let iters = 16;
    for w in corpus() {
        let m = MachineConfig::new(4, w.k);
        let s = doacross_schedule(&w.graph, &m, iters, &Default::default()).expect(w.name);
        ScheduleTable::from_timed(&s.timing)
            .validate(&w.graph, &m)
            .expect(w.name);
        // DOACROSS runs every iteration serially: per-processor makespan is
        // at least (#iterations on that proc) * body latency.
        let per_proc = iters as u64 / 4 * w.graph.body_latency();
        assert!(s.makespan() >= per_proc, "{}", w.name);
    }
}

#[test]
fn doall_control_reaches_full_processor_speedup() {
    let w = wl::doall();
    let iters = 32;
    let m = MachineConfig::new(4, w.k);
    let ours = schedule_loop(&w.graph, &m, iters, &Default::default()).unwrap();
    let da = doacross_schedule(&w.graph, &m, iters, &Default::default()).unwrap();
    let s = sim::sequential_time(&w.graph, iters);
    // Both techniques parallelize a DOALL loop perfectly (no carried deps,
    // 4 independent chains over 4 procs).
    assert_eq!(da.makespan(), s / 4);
    assert!(
        ours.makespan() <= s / 2,
        "ours {} vs seq {s}",
        ours.makespan()
    );
}

#[test]
fn unrolled_loops_schedule_through_the_facade() {
    // Distance-3 self-recurrence: normalization unrolls by 3, after which
    // three copies run concurrently.
    let mut b = DdgBuilder::new();
    let x = b.node_lat("x", 2);
    b.dep_dist(x, x, 3);
    let g = b.build().unwrap();
    let m = MachineConfig::new(4, 1);
    let r = mimd_loop_par::parallelize(&g, &m, 30, &Default::default()).unwrap();
    assert_eq!(r.unroll_factor, 3);
    let table = ScheduleTable::from_timed(&r.schedule.timing);
    table.validate(&r.normalized, &m).unwrap();
    // Steady state: 3 chains of II 2 in parallel -> 2 cycles per
    // super-iteration, i.e. 2/3 cycle per original iteration.
    let ii = r.schedule.cyclic_ii().unwrap();
    assert!(ii <= 2.0 + 1e-9, "ii = {ii}");
}
