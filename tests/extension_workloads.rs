//! The extension workloads (beyond the paper's figures): Livermore
//! kernels 5 and 23 through the *whole* stack — IR front end, scheduling,
//! simulation, real semantics derived from the IR, threaded execution.

use mimd_loop_par::ir::{self, lower_loop};
use mimd_loop_par::prelude::*;
use mimd_loop_par::runtime::{run_sequential, run_threaded, semantics_from_ir};
use mimd_loop_par::sim;
use mimd_loop_par::workloads as wl;

#[test]
fn livermore5_no_technique_beats_the_bound() {
    // Negative control: the recurrence threads the whole body.
    let w = wl::livermore5();
    let m = MachineConfig::new(4, w.k);
    let iters = 100;
    let ours = schedule_loop(&w.graph, &m, iters, &Default::default()).unwrap();
    let da = doacross_schedule(&w.graph, &m, iters, &Default::default()).unwrap();
    let bound = (mimd_loop_par::ddg::scc::recurrence_bound(&w.graph) * iters as f64) as u64;
    assert!(ours.makespan() >= bound);
    assert!(da.makespan() >= bound);
    // Ours at least *finds* the bound (II = 3, single processor, no comm).
    assert_eq!(ours.cyclic_ii(), Some(3.0));
}

#[test]
fn livermore23_ours_beats_doacross() {
    let w = wl::livermore23();
    let m = MachineConfig::new(w.procs, w.k);
    let iters = 100;
    let ours = schedule_loop(&w.graph, &m, iters, &Default::default()).unwrap();
    let da = doacross_schedule(&w.graph, &m, iters, &Default::default()).unwrap();
    let s = sim::sequential_time(&w.graph, iters);
    let sp_ours = mimd_loop_par::metrics::percentage_parallelism_clamped(s, ours.makespan());
    let sp_da = mimd_loop_par::metrics::percentage_parallelism_clamped(s, da.makespan());
    assert!(sp_ours > sp_da, "{sp_ours} vs {sp_da}");
    assert!(
        sp_ours > 10.0,
        "the m1 side work overlaps the recurrence: {sp_ours}"
    );
}

/// Both extension kernels execute with *real arithmetic* derived from
/// their IR, bit-identical across engines — the strongest semantic check
/// in the repository.
#[test]
fn extension_kernels_run_with_real_semantics() {
    for (name, body) in [
        ("livermore5", livermore5_body()),
        ("livermore23", livermore23_body()),
    ] {
        let (g, flat) = lower_loop(&body, &Default::default()).expect(name);
        let sem = semantics_from_ir(&g, &flat).expect(name);
        let m = MachineConfig::new(2, 2);
        let iters = 60;
        let s = schedule_loop(&g, &m, iters, &Default::default()).expect(name);
        let par = run_threaded(&g, &sem, &s.program).expect(name);
        let seq = run_sequential(&g, &sem, iters);
        assert_eq!(par, seq, "{name}");
    }
}

fn livermore5_body() -> ir::LoopBody {
    use ir::*;
    LoopBody::new(vec![
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "T".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Sub, arr("Y"), arr_at("X", -1)),
            latency: 1,
            label: Some("sub".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "X".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Mul, arr("Z"), arr("T")),
            latency: 2,
            label: Some("mul".into()),
        }),
    ])
}

fn livermore23_body() -> ir::LoopBody {
    use ir::*;
    LoopBody::new(vec![
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "M1".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Mul, arr_at("ZA", 1), arr("ZR")),
            latency: 2,
            label: Some("m1".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "M2".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Mul, arr_at("ZA", -1), arr("ZB")),
            latency: 2,
            label: Some("m2".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "QA".into(),
                offset: 0,
            },
            rhs: binop(
                BinOp::Add,
                binop(BinOp::Add, arr("M1"), arr("M2")),
                arr("ZE"),
            ),
            latency: 2,
            label: Some("qa".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "DD".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Sub, arr("QA"), arr("ZA")),
            latency: 1,
            label: Some("dd".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "ZA".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Add, arr("ZA"), arr("DD")),
            latency: 1,
            label: Some("up".into()),
        }),
    ])
}

/// The contention extension, end to end on a paper workload: our pattern
/// schedule barely notices a narrow interconnect; DOACROSS suffers.
#[test]
fn contention_hits_doacross_harder_on_cytron86() {
    use mimd_loop_par::sim::{simulate_event, LinkModel};
    let w = wl::cytron86();
    let m = MachineConfig::new(5, w.k);
    let iters = 100;
    let ours = schedule_loop(&w.graph, &m, iters, &Default::default()).unwrap();
    let da = doacross_schedule(&w.graph, &m, iters, &Default::default()).unwrap();
    let t = TrafficModel::stable(0);
    let run = |prog, link| {
        simulate_event(prog, &w.graph, &m, &t, link)
            .unwrap()
            .makespan
    };
    let ours_slowdown = run(&ours.program, LinkModel::SingleMessage) as f64
        / run(&ours.program, LinkModel::Unlimited) as f64;
    let da_slowdown = run(&da.program, LinkModel::SingleMessage) as f64
        / run(&da.program, LinkModel::Unlimited) as f64;
    assert!(
        ours_slowdown <= da_slowdown + 1e-9,
        "ours x{ours_slowdown:.3} vs doacross x{da_slowdown:.3}"
    );
}
