//! Theorem 1 (pattern emergence) — checked, stress-tested, and bounded.
//!
//! The paper proves that the greedy communication-aware schedule develops a
//! repeating pattern. These tests (a) verify detected patterns against
//! long raw greedy runs, (b) show both detectors agree, and (c) pin the
//! **counter-example** we found during this reproduction: two SCCs with
//! different natural rates drift apart forever, so no pattern can emerge
//! and the implementation must degrade gracefully.

use mimd_loop_par::prelude::*;
use mimd_loop_par::sched::{greedy_finite, greedy_unbounded, CyclicOptions, DetectorKind};
use mimd_loop_par::workloads as wl;

fn cyclic_core(w: &wl::Workload) -> mimd_loop_par::ddg::Ddg {
    let cls = classify(&w.graph);
    let (sub, _) = w.graph.induced_subgraph(&cls.cyclic);
    sub
}

#[test]
fn patterns_emerge_on_all_paper_workloads() {
    for w in [
        wl::figure3(),
        wl::figure7(),
        wl::cytron86(),
        wl::livermore18(),
        wl::elliptic(),
    ] {
        let g = cyclic_core(&w);
        let m = MachineConfig::new(w.procs, w.k);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).expect(w.name);
        assert!(out.pattern().is_some(), "{}: pattern must emerge", w.name);
    }
}

#[test]
fn detected_pattern_predicts_the_far_future() {
    // Instantiate far beyond the detection horizon and compare against a
    // fresh finite greedy run — the strongest form of Theorem 1 checking.
    for w in [wl::figure7(), wl::cytron86()] {
        let g = cyclic_core(&w);
        let m = MachineConfig::new(w.procs, w.k);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).expect(w.name);
        let iters = 150u32;
        let mut from_pattern = out.instantiate(iters);
        let raw = greedy_unbounded(&g, &m, (iters as usize + 50) * g.node_count());
        let mut from_greedy: Vec<_> = raw.into_iter().filter(|p| p.inst.iter < iters).collect();
        from_pattern.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
        from_greedy.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
        assert_eq!(from_pattern, from_greedy, "{}", w.name);
    }
}

#[test]
fn both_detectors_find_equal_rate_patterns() {
    for w in [
        wl::figure3(),
        wl::figure7(),
        wl::cytron86(),
        wl::livermore18(),
        wl::elliptic(),
    ] {
        let g = cyclic_core(&w);
        let m = MachineConfig::new(w.procs, w.k);
        let state = cyclic_schedule(&g, &m, &CyclicOptions::default()).expect(w.name);
        let window = cyclic_schedule(
            &g,
            &m,
            &CyclicOptions {
                detector: DetectorKind::ConfigurationWindow,
                ..CyclicOptions::default()
            },
        )
        .expect(w.name);
        assert!(
            window.pattern().is_some(),
            "{}: window detector finds it too",
            w.name
        );
        assert!(
            (state.steady_ii() - window.steady_ii()).abs() < 1e-9,
            "{}: {} vs {}",
            w.name,
            state.steady_ii(),
            window.steady_ii()
        );
    }
}

#[test]
fn rate_gap_counterexample_defeats_both_detectors() {
    // Two SCCs at II 3 and II 4: the fast one runs unboundedly ahead; the
    // iteration spread in any window grows without bound and no
    // configuration (or scheduler state) ever repeats. Theorem 1 as stated
    // does not hold for this loop.
    let w = wl::rate_gap();
    let m = MachineConfig::new(w.procs, w.k);
    for detector in [
        DetectorKind::SchedulerState,
        DetectorKind::ConfigurationWindow,
    ] {
        let out = cyclic_schedule(
            &w.graph,
            &m,
            &CyclicOptions {
                unroll_cap: 128,
                detector,
                ..CyclicOptions::default()
            },
        )
        .unwrap();
        assert!(
            out.pattern().is_none(),
            "{detector:?}: no pattern can exist for rate-mismatched SCCs"
        );
        // The fallback still yields a valid schedule near the slow rate.
        let placements = out.instantiate(32);
        ScheduleTable::new(placements)
            .validate(&w.graph, &m)
            .unwrap();
        assert!(out.steady_ii() >= 4.0 - 1e-9);
        assert!(
            out.steady_ii() <= 4.5,
            "fallback stays near the slow SCC's rate"
        );
    }
}

#[test]
fn rate_gap_drift_is_real() {
    // Quantify the drift: C (fast SCC) of iteration i is scheduled ~3i,
    // D (slow SCC) ~4i; by iteration 60 the same-iteration gap exceeds 50
    // cycles and keeps growing — there is no bounded window Lemma 3 could
    // use.
    let w = wl::rate_gap();
    let m = MachineConfig::new(w.procs, w.k);
    let placements = greedy_finite(&w.graph, &m, 80);
    let table = ScheduleTable::new(placements);
    let c = w.graph.find("C").unwrap();
    let d = w.graph.find("D").unwrap();
    let gap = |i: u32| {
        let tc = table
            .start_of(mimd_loop_par::ddg::InstanceId { node: c, iter: i })
            .unwrap();
        let td = table
            .start_of(mimd_loop_par::ddg::InstanceId { node: d, iter: i })
            .unwrap();
        td as i64 - tc as i64
    };
    assert!(
        gap(60) > gap(20) + 20,
        "gap grows: {} vs {}",
        gap(60),
        gap(20)
    );
}

#[test]
fn enumeration_order_is_machine_independent() {
    use mimd_loop_par::sched::enumeration_order;
    let w = wl::figure7();
    let order = enumeration_order(&w.graph, 20);
    // One instance of every node per iteration, iterations in order.
    for (i, chunk) in order.chunks(5).enumerate() {
        assert!(chunk.iter().all(|inst| inst.iter == i as u32));
    }
}

#[test]
fn pattern_prologue_plus_kernels_partition_instances() {
    let w = wl::figure7();
    let m = MachineConfig::new(2, 2);
    let out = cyclic_schedule(&w.graph, &m, &CyclicOptions::default()).unwrap();
    let p = out.pattern().unwrap();
    let iters = 30u32;
    let placements = p.instantiate(iters);
    let mut seen = std::collections::HashSet::new();
    for pl in &placements {
        assert!(seen.insert(pl.inst), "duplicate {:?}", pl.inst);
    }
    assert_eq!(seen.len(), 5 * iters as usize);
}
