//! Cross-crate property tests: for randomized loops (the paper's §4
//! recipe, scaled down), the whole pipeline must uphold its invariants —
//! schedules validate, patterns predict the future, simulation reproduces
//! static timing, threads compute sequential values.

use mimd_loop_par::prelude::*;
use mimd_loop_par::runtime::{run_sequential, run_threaded, Semantics};
use mimd_loop_par::sched::{greedy_unbounded, CyclicOptions};
use mimd_loop_par::sim;
use mimd_loop_par::workloads::{random_cyclic_loop, random_loop, RandomLoopConfig};
use proptest::prelude::*;

fn small_cfg(nodes: usize) -> RandomLoopConfig {
    RandomLoopConfig {
        nodes,
        lcds: nodes / 2,
        sds: nodes / 2,
        min_latency: 1,
        max_latency: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-pipeline validity on arbitrary random loops (all three
    /// subsets present in general).
    #[test]
    fn schedule_loop_validates(seed in 0u64..5000, nodes in 4usize..14, k in 0u32..4, procs in 1usize..6) {
        let g = random_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let iters = 10;
        let s = schedule_loop(&g, &m, iters, &Default::default()).unwrap();
        s.program.check_complete(&g).unwrap();
        ScheduleTable::from_timed(&s.timing).validate(&g, &m).unwrap();
    }

    /// Pattern instantiation == the *unbounded* greedy schedule restricted
    /// to the first N iterations (Theorem 1, end to end). The finite
    /// greedy is not the right oracle: restriction leaves holes where
    /// later-iteration instances sat (see `greedy_finite` docs).
    #[test]
    fn pattern_equals_unbounded_greedy(seed in 0u64..5000, nodes in 4usize..12, k in 0u32..4, procs in 1usize..6) {
        let g = random_cyclic_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        if out.pattern().is_some() {
            let iters = 40u32;
            // Enough raw placements that every iteration < N instance has
            // been scheduled (iteration spread is bounded for patterned
            // loops; 50 extra iterations is a generous margin).
            let raw = greedy_unbounded(&g, &m, (iters as usize + 50) * g.node_count());
            let mut a = out.instantiate(iters);
            let mut b: Vec<_> = raw.into_iter().filter(|p| p.inst.iter < iters).collect();
            a.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
            b.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
            prop_assert_eq!(a, b);
            // And the instantiation is a valid schedule in its own right.
            ScheduleTable::new(out.instantiate(iters)).validate(&g, &m).unwrap();
        }
    }

    /// Simulation at mm = 1 reproduces the static schedule exactly.
    #[test]
    fn sim_reproduces_static(seed in 0u64..5000, nodes in 4usize..12, procs in 1usize..6) {
        let g = random_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, 2);
        let s = schedule_loop(&g, &m, 12, &Default::default()).unwrap();
        let r = sim::simulate(&s.program, &g, &m, &TrafficModel::stable(seed)).unwrap();
        prop_assert_eq!(r.makespan, s.timing.makespan);
    }

    /// Monotonicity: worse traffic can only delay completion.
    #[test]
    fn traffic_monotonicity(seed in 0u64..5000, nodes in 4usize..10) {
        let g = random_cyclic_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 12, &Default::default()).unwrap();
        let t1 = sim::simulate(&s.program, &g, &m, &TrafficModel::stable(seed)).unwrap().makespan;
        let t5 = sim::simulate(&s.program, &g, &m, &TrafficModel { mm: 5, seed }).unwrap().makespan;
        prop_assert!(t5 >= t1);
    }

    /// Threaded execution computes sequential values on random loops.
    #[test]
    fn threads_match_interpreter(seed in 0u64..2000, nodes in 4usize..10, procs in 1usize..5) {
        let g = random_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, 1);
        let iters = 12;
        let s = schedule_loop(&g, &m, iters, &Default::default()).unwrap();
        let sem = Semantics::hashing(&g);
        let par = run_threaded(&g, &sem, &s.program).unwrap();
        let seq = run_sequential(&g, &sem, iters);
        prop_assert_eq!(par, seq);
    }

    /// The steady rate never beats the recurrence bound.
    #[test]
    fn rate_respects_recurrence_bound(seed in 0u64..5000, nodes in 4usize..12, procs in 1usize..8) {
        let g = random_cyclic_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let bound = mimd_loop_par::ddg::scc::recurrence_bound(&g);
        prop_assert!(out.steady_ii() + 1e-6 >= bound,
            "ii {} < bound {}", out.steady_ii(), bound);
    }

    /// DOACROSS validity + honesty: per-processor serial iterations.
    #[test]
    fn doacross_validates(seed in 0u64..5000, nodes in 4usize..12, procs in 1usize..6) {
        let g = random_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, 2);
        let s = doacross_schedule(&g, &m, 10, &Default::default()).unwrap();
        ScheduleTable::from_timed(&s.timing).validate(&g, &m).unwrap();
        prop_assert!(s.makespan() >= (10 / procs as u64) * g.body_latency());
    }
}
