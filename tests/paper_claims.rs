//! The paper's headline quantitative claims, as executable assertions.
//! EXPERIMENTS.md records the exact measured values next to the paper's.

use mimd_loop_par::experiments::{figures, table1};
use mimd_loop_par::workloads as wl;

/// §3, Figure 7: "The percentage parallelism obtained for this example …
/// is 40 by our algorithm, while that by DOACROSS is 0."
#[test]
fn figure7_percentages() {
    let r = figures::figure_report(&wl::figure7(), 200);
    assert!(
        r.ours_sp >= 40.0,
        "paper: 40; strict greedy reaches 50: {}",
        r.ours_sp
    );
    assert_eq!(r.doacross_sp, 0.0);
    // Figure 8(b): even optimal reordering does not help DOACROSS here.
    assert_eq!(r.doacross_best_sp, 0.0);
}

/// §3, Figure 9: "the percentage parallelism obtained by our algorithm is
/// 72.7%, and that by DOACROSS is 31.8%." (graph reconstructed; we pin the
/// shape with generous bands and record exact values in EXPERIMENTS.md)
#[test]
fn cytron86_percentages() {
    let r = figures::figure_report(&wl::cytron86(), 200);
    assert!(
        (60.0..=80.0).contains(&r.ours_sp),
        "paper 72.7, got {}",
        r.ours_sp
    );
    assert!(
        (15.0..=45.0).contains(&r.doacross_sp),
        "paper 31.8, got {}",
        r.doacross_sp
    );
    assert!(
        r.ours_sp / r.doacross_sp.max(1.0) > 1.8,
        "ours decisively ahead"
    );
}

/// §3, Figure 11 (Livermore 18): "49.4 and 30.9, while those by DOACROSS
/// are 12.6 and 0" — the first pair.
#[test]
fn livermore18_percentages() {
    let r = figures::figure_report(&wl::livermore18(), 200);
    assert!(r.ours_sp > 40.0, "paper 49.4, got {}", r.ours_sp);
    assert!(
        r.doacross_sp < r.ours_sp / 1.8,
        "paper gap ≈ 4x, got {} vs {}",
        r.ours_sp,
        r.doacross_sp
    );
}

/// §3, Figure 12 (elliptic filter): ours 30.9, DOACROSS 0.
#[test]
fn elliptic_percentages() {
    let r = figures::figure_report(&wl::elliptic(), 200);
    assert!(
        (18.0..=40.0).contains(&r.ours_sp),
        "paper 30.9, got {}",
        r.ours_sp
    );
    assert_eq!(r.doacross_sp, 0.0, "paper: DOACROSS gets nothing");
}

/// §2.2/§3: the Cyclic pattern of the Cytron86 example has height 6 and
/// runs on two processors, leading to 5 subloops total (Figure 10).
#[test]
fn cytron86_structure() {
    use mimd_loop_par::prelude::*;
    let w = wl::cytron86();
    let m = MachineConfig::new(2, w.k);
    let s = schedule_loop(&w.graph, &m, 50, &Default::default()).unwrap();
    let p = s.cyclic_outcomes[0].pattern().expect("pattern");
    assert_eq!(p.cycles_per_period, 6, "pattern height H = 6");
    assert_eq!(p.kernel_processors(), 2);
    // Figure 5 arithmetic: L = 13 (latency), H = 6 -> a handful of extra
    // Flow-in processors; the paper's Figure 10 shows 5 subloops total.
    assert!(
        s.processors_used() <= 5,
        "at most 5 subloops: {}",
        s.processors_used()
    );
}

/// §4, Table 1: ours beats DOACROSS on (nearly) every loop; the average
/// ratio is substantial and does not collapse as traffic fluctuation
/// grows (the paper measures factors 2.9 / 3.0 / 3.3 for mm = 1 / 3 / 5).
#[test]
fn table1_shape() {
    let cfg = table1::Table1Config {
        seeds: (1..=12).collect(),
        iters: 80,
        ..Default::default()
    };
    let r = table1::run_table1(&cfg);
    // Wins: the paper loses 0/1/2 loops out of 25 across the mm settings.
    for (i, &losses) in r.losses.iter().enumerate() {
        assert!(
            losses <= cfg.seeds.len() / 4,
            "mm={}: lost {} of {}",
            cfg.mms[i],
            losses,
            cfg.seeds.len()
        );
    }
    // Factor band.
    assert!(r.factor[0] > 1.8, "factor at mm=1: {}", r.factor[0]);
    let last = *r.factor.last().unwrap();
    assert!(last > 1.8, "factor at mm=5: {last}");
    assert!(
        last >= r.factor[0] * 0.75,
        "robustness: {} -> {last}",
        r.factor[0]
    );
    // Averages decrease with mm for both techniques (graceful degradation).
    for w in r.avg_ours.windows(2) {
        assert!(w[1] <= w[0] + 1e-9);
    }
}

/// §4's conclusion quantified: even when communication is underestimated
/// by 2.3x (mm = 5), our average percentage parallelism stays positive
/// and well above DOACROSS's.
#[test]
fn robustness_claim() {
    let cfg = table1::Table1Config {
        seeds: (1..=8).collect(),
        iters: 80,
        mms: vec![5],
        ..Default::default()
    };
    let r = table1::run_table1(&cfg);
    assert!(r.avg_ours[0] > 15.0, "avg at mm=5: {}", r.avg_ours[0]);
    assert!(r.avg_ours[0] > r.avg_doacross[0] * 1.8);
}
