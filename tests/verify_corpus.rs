//! The `kn-verify` acceptance sweep (tier-1 mirror of the CI
//! `verify-corpus` job):
//!
//! * every good `corpus/*.ddg` lints clean (no error findings) and both
//!   schedulers' output passes the static certifier;
//! * every `corpus/bad/*.ddg` fixture fails lint with exactly its
//!   documented `KN0xx` code;
//! * on random loops (paper §4 recipe) the certifier accepts 100% of the
//!   schedules `schedule_loop` and `doacross_schedule` emit — the
//!   soundness half of the mutation tests in `kn_verify::certify`;
//! * the service rejects an invalid DDG at admission with the stable
//!   code, and the wire layer carries it as a `"code"` field.

use kn_verify::{certify_loop, certify_timed, lint_text, Code};
use mimd_loop_par::doacross::{doacross_schedule, DoacrossOptions};
use mimd_loop_par::sched::MachineConfig;
use mimd_loop_par::service::{
    LoopRequest, LoopSource, RejectReason, ScheduleRequest, Service, SubmitOptions, SubmitOutcome,
};
use mimd_loop_par::workloads::{random_loop, RandomLoopConfig};
use proptest::prelude::*;

fn corpus_files(dir: &str) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ddg"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .ddg files in {dir}");
    files
}

#[test]
fn good_corpus_lints_clean_and_certifies_under_both_schedulers() {
    for path in corpus_files("corpus") {
        let text = std::fs::read_to_string(&path).unwrap();
        let lint = lint_text(&text).unwrap_or_else(|e| panic!("{path:?}: parse error {e}"));
        assert!(
            !lint.report.has_errors(),
            "{path:?} should lint clean:\n{}",
            lint.report.render_human()
        );
        let g = lint.graph.expect("clean lint implies a valid graph");
        for &(procs, k) in &[(2usize, 2u32), (4, 1)] {
            let m = MachineConfig::new(procs, k);
            let r = mimd_loop_par::parallelize(&g, &m, 24, &Default::default())
                .unwrap_or_else(|e| panic!("{path:?}: cyclic scheduling failed: {e}"));
            let rep = certify_loop(&r.normalized, &m, &r.schedule);
            assert!(
                !rep.has_errors(),
                "{path:?} cyclic schedule must certify ({procs}p k={k}):\n{}",
                rep.render_human()
            );
            let s = doacross_schedule(&g, &m, 24, &DoacrossOptions::default())
                .unwrap_or_else(|e| panic!("{path:?}: doacross failed: {e}"));
            let rep = certify_timed(&g, &m, &s.timing, 24);
            assert!(
                !rep.has_errors(),
                "{path:?} doacross schedule must certify ({procs}p k={k}):\n{}",
                rep.render_human()
            );
        }
    }
}

#[test]
fn bad_fixtures_fail_with_their_documented_codes() {
    let expected = [
        ("zero_latency.ddg", Code::Kn001),
        ("duplicate_name.ddg", Code::Kn002),
        ("dangling.ddg", Code::Kn003),
        ("self_dep.ddg", Code::Kn004),
        ("intra_cycle.ddg", Code::Kn005),
        ("empty.ddg", Code::Kn006),
    ];
    let files = corpus_files("corpus/bad");
    assert_eq!(
        files.len(),
        expected.len(),
        "fixture set drifted: {files:?}"
    );
    for path in files {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let code = expected
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no expected code for fixture {name}"))
            .1;
        let text = std::fs::read_to_string(&path).unwrap();
        let lint = lint_text(&text).unwrap();
        let first = lint
            .report
            .first_error()
            .unwrap_or_else(|| panic!("{name} must fail lint"));
        assert_eq!(first.code, code, "{name}: {}", lint.report.render_human());
    }
}

#[test]
fn service_rejects_invalid_ddg_at_admission_with_stable_code() {
    let svc = Service::new(1);
    let req = ScheduleRequest::Loop(LoopRequest {
        source: LoopSource::DdgText("node a\nedge a -> a dist=0\n".into()),
        ..Default::default()
    });
    let out = svc.try_submit(req.clone(), SubmitOptions::default());
    let SubmitOutcome::Rejected(RejectReason::InvalidDdg { code, message }) = out else {
        panic!("expected an InvalidDdg rejection, got {out:?}");
    };
    assert_eq!(code, "KN004");
    assert!(message.contains("self-dependence"), "{message}");
    // The blocking path applies the same gate (before blocking).
    let out = svc.submit_opts(req, SubmitOptions::default());
    assert!(
        matches!(
            out,
            SubmitOutcome::Rejected(RejectReason::InvalidDdg { .. })
        ),
        "{out:?}"
    );
    // The rejection costs nothing: the pool still serves good work.
    let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
    assert!(svc.collect(&[id])[0].1.is_ok());
}

#[test]
fn syntax_errors_still_reach_the_worker_as_bad_request() {
    // The admission gate only intercepts *semantic* lint errors; a file
    // that does not parse keeps its established BadRequest path (and
    // message), pinned by the service goldens.
    use mimd_loop_par::service::ServiceError;
    let svc = Service::new(1);
    let req = ScheduleRequest::Loop(LoopRequest {
        source: LoopSource::DdgText("node a\nedgy nonsense\n".into()),
        ..Default::default()
    });
    let id = match svc.try_submit(req, SubmitOptions::default()) {
        SubmitOutcome::Accepted(id) => id,
        other => panic!("syntax errors must pass admission, got {other:?}"),
    };
    let got = svc.collect(&[id]).pop().unwrap().1;
    assert!(
        matches!(&got, Err(ServiceError::BadRequest(m)) if m.contains("DDG parse error")),
        "{got:?}"
    );
}

#[test]
fn wire_response_carries_the_code_field() {
    use mimd_loop_par::service::wire::response_json_with;
    use mimd_loop_par::service::ServiceError;
    let line = response_json_with(
        7,
        &Err(ServiceError::InvalidDdg {
            code: "KN004".into(),
            message: "zero-distance self-dependence on node \"a\"".into(),
        }),
        0,
    );
    assert!(line.contains("\"code\": \"KN004\""), "{line}");
    assert!(line.contains("\"status\": \"error\""), "{line}");
}

fn small_cfg(nodes: usize) -> RandomLoopConfig {
    RandomLoopConfig {
        nodes,
        lcds: nodes / 2,
        sds: nodes / 2,
        min_latency: 1,
        max_latency: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The certifier accepts every schedule the paper's pipeline emits on
    /// random loops — zero false positives across the sweep.
    #[test]
    fn certifier_accepts_cyclic_pipeline(seed in 0u64..5000, nodes in 4usize..12, k in 0u32..4, procs in 1usize..6) {
        let g = random_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let r = mimd_loop_par::parallelize(&g, &m, 12, &Default::default()).unwrap();
        let rep = certify_loop(&r.normalized, &m, &r.schedule);
        prop_assert!(!rep.has_errors(), "seed {}: {}", seed, rep.render_human());
    }

    /// Same for the DOACROSS baseline (which handles unnormalized
    /// distances natively).
    #[test]
    fn certifier_accepts_doacross(seed in 0u64..5000, nodes in 4usize..12, k in 0u32..4, procs in 1usize..6) {
        let g = random_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let s = doacross_schedule(&g, &m, 12, &DoacrossOptions::default()).unwrap();
        let rep = certify_timed(&g, &m, &s.timing, 12);
        prop_assert!(!rep.has_errors(), "seed {}: {}", seed, rep.render_human());
    }
}
