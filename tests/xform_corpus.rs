//! Golden tests for the transform corpus (`corpus/xform/*.ir`).
//!
//! Every fixture runs through the full transform pipeline (both passes)
//! and its JSON report must match `corpus/xform/golden.jsonl` byte for
//! byte — the same output `kn transform FILE --json` prints, and what the
//! CI `xform-equivalence` job diffs. The negatives additionally pin their
//! exact skip codes, so a regenerated golden cannot silently bless a
//! transform that started firing where it must not.

use mimd_loop_par::ir::parse_loop;
use mimd_loop_par::xform::{transform_loop, TransformOptions};

/// Fixture order matches golden.jsonl line order.
const FIXTURES: &[&str] = &[
    "sum", "maxdelta", "twophase", "islands", "scan", "nonassoc", "storage", "figure7",
];

fn corpus_path(name: &str) -> String {
    format!("{}/corpus/xform/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn transform_json(stem: &str) -> String {
    let text = std::fs::read_to_string(corpus_path(&format!("{stem}.ir")))
        .expect("corpus fixture present");
    let body = parse_loop(&text).expect("fixture parses");
    transform_loop(stem, &body, &TransformOptions::all())
        .expect("certified transform")
        .to_json()
}

#[test]
fn golden_jsonl_matches_the_pipeline_byte_for_byte() {
    let golden = std::fs::read_to_string(corpus_path("golden.jsonl")).expect("golden present");
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), FIXTURES.len(), "one golden line per fixture");
    for (stem, want) in FIXTURES.iter().zip(&lines) {
        assert_eq!(&transform_json(stem), want, "fixture {stem}");
    }
}

#[test]
fn negatives_decline_with_their_exact_skip_codes() {
    for (stem, field, code) in [
        ("scan", "reduce", "skipped(XR02)"),
        ("nonassoc", "reduce", "skipped(XR01)"),
        ("storage", "fission", "skipped(XS03)"),
        ("figure7", "fission", "skipped(XS02)"),
        ("sum", "fission", "skipped(XS01)"),
    ] {
        let json = transform_json(stem);
        let needle = format!("\"{field}\":\"{code}\"");
        assert!(json.contains(&needle), "{stem}: {json} missing {needle}");
        // A negative that skipped both passes must not change the program.
        if stem != "sum" {
            assert!(
                json.contains("\"equivalence\":\"unchanged\"")
                    || json.contains("\"reduce\":\"applied\""),
                "{stem}: {json}"
            );
        }
    }
}

#[test]
fn applied_fixtures_are_certified_and_never_worse() {
    for stem in FIXTURES {
        let text = std::fs::read_to_string(corpus_path(&format!("{stem}.ir"))).unwrap();
        let body = parse_loop(&text).unwrap();
        let out = transform_loop(stem, &body, &TransformOptions::all()).unwrap();
        assert!(
            out.report.mii_after <= out.report.mii_before + 1e-9,
            "{stem}: mii {} -> {}",
            out.report.mii_before,
            out.report.mii_after
        );
        if out.changed() {
            assert!(
                out.report.equivalence.starts_with("ok("),
                "{stem}: {}",
                out.report.equivalence
            );
        }
    }
}
