//! A condensed rerun of the paper's Table 1 plus the mis-estimation
//! ablation: random Cyclic loops, our schedule vs DOACROSS, traffic
//! fluctuating up to 2.3× past the estimate.
//!
//! Run with `cargo run --release --example robustness_sweep` (release
//! strongly recommended — 25 loops × 3 traffic settings).

use mimd_loop_par::experiments::{ablate, table1};

fn main() {
    let cfg = table1::Table1Config {
        seeds: (1..=10).collect(),
        iters: 100,
        ..Default::default()
    };
    println!(
        "Table 1 (condensed): {} random loops, k = {}, {} PEs, {} iterations\n",
        cfg.seeds.len(),
        cfg.k,
        cfg.procs,
        cfg.iters
    );
    let r = table1::run_table1(&cfg);
    println!("{}", r.render_rows());
    println!("{}", r.render_summary());
    println!(
        "paper Table 1(b): averages 47.4 / 16.3 (mm=1), 39.1 / 13.1 (mm=3), \
         30.3 / 9.5 (mm=5); factors 2.9 / 3.0 / 3.3\n"
    );

    println!("mis-estimation ablation: schedule with k_est, execute at true k = 3\n");
    let mis = ablate::misestimation_ablation(&cfg.seeds, &[1, 2, 3, 4, 6], 3, 8, 100);
    println!("{}", mis.render());
}
