//! Livermore kernel 18 (2-D explicit hydrodynamics) under unstable
//! communication traffic — the paper's Figure 11 workload put through the
//! §4 robustness protocol.
//!
//! The schedule is built once with the *estimated* communication cost
//! `k = 2`; the simulated machine then charges every message
//! `k + (0..mm-1)` cycles. DOACROSS runs under the same conditions. Watch
//! the gap persist as traffic degrades — the paper's central robustness
//! claim.
//!
//! Run with `cargo run --example livermore_hydro`.

use mimd_loop_par::prelude::*;
use mimd_loop_par::{metrics, sim, workloads};

fn main() {
    let iters = 300;
    let w = workloads::livermore18();
    let m = MachineConfig::new(w.procs, w.k);

    let cls = classify(&w.graph);
    println!(
        "{}: {} nodes ({} Flow-in, {} Cyclic), body latency {}",
        w.name,
        w.graph.node_count(),
        cls.flow_in.len(),
        cls.cyclic.len(),
        w.graph.body_latency()
    );

    let ours = schedule_loop(&w.graph, &m, iters, &Default::default()).unwrap();
    println!(
        "cyclic pattern II = {:.2}, {} processors used, flow placement: {:?}",
        ours.cyclic_ii().unwrap(),
        ours.processors_used(),
        ours.flow_decision
    );
    let da = doacross_schedule(&w.graph, &m, iters, &Default::default()).unwrap();
    println!("DOACROSS delay = {} cycles/iteration\n", da.delay);

    let s = sim::sequential_time(&w.graph, iters);
    let mut table = metrics::TextTable::new(&["mm", "ours Sp", "DOACROSS Sp", "ratio"]);
    for mm in [1u32, 2, 3, 5] {
        let traffic = TrafficModel { mm, seed: 18 };
        let o = sim::simulate(&ours.program, &w.graph, &m, &traffic)
            .unwrap()
            .makespan;
        let d = sim::simulate(&da.program, &w.graph, &m, &traffic)
            .unwrap()
            .makespan;
        let so = metrics::percentage_parallelism_clamped(s, o);
        let sd = metrics::percentage_parallelism_clamped(s, d);
        table.row(vec![
            mm.to_string(),
            metrics::f1(so),
            metrics::f1(sd),
            if sd > 0.0 {
                format!("{:.2}", so / sd)
            } else {
                "inf".into()
            },
        ]);
    }
    println!("{}", table.render());
    println!("(paper Fig. 11: ours 49.4% vs DOACROSS 12.6% at stable traffic)");
}
