//! Code generation showcase: the transformed parallel loops the paper
//! prints as Figures 7(e) and 10, plus if-conversion of a conditional
//! loop and GraphViz export.
//!
//! Run with `cargo run --example transformed_code`.

use mimd_loop_par::ir::{self, arr, arr_at, assign, binop, if_stmt, BinOp, LoopBody};
use mimd_loop_par::prelude::*;
use mimd_loop_par::{ddg, sched, workloads};

fn show(w: &workloads::Workload) {
    let m = MachineConfig::new(w.procs, w.k);
    let cls = classify(&w.graph);
    let (cyc, back) = w.graph.induced_subgraph(&cls.cyclic);
    let outcome = cyclic_schedule(&cyc, &m, &Default::default()).unwrap();
    if let PatternOutcome::Found(p) = outcome {
        let p = p.map_nodes(|v| back[v.index()]);
        println!("=== {} ===", w.name);
        println!(
            "{}",
            sched::codegen::render_parallel_loop(&w.graph, &p, "N")
        );
    }
}

fn main() {
    // Figure 7(e): the two-processor transformed loop.
    show(&workloads::figure7());
    // Figure 10: the Cytron86 example's Cyclic core.
    show(&workloads::cytron86());

    // If-conversion (paper §1, citing AlKe83): a conditional loop becomes
    // straight-line guarded assignments before scheduling.
    let body = LoopBody::new(vec![
        assign("B", "B", 0, arr_at("A", -1)),
        if_stmt(
            binop(BinOp::Gt, arr("B"), ir::c(0)),
            vec![assign("At", "A", 0, binop(BinOp::Add, arr("B"), ir::c(1)))],
            vec![assign("Ae", "A", 0, ir::c(0))],
        ),
    ]);
    let (g, flat) = ir::lower_loop(&body, &Default::default()).unwrap();
    println!("=== if-converted conditional loop ===");
    for ga in &flat {
        println!("    {ga}");
    }
    let m = MachineConfig::new(2, 2);
    let s = schedule_loop(&g, &m, 50, &Default::default()).unwrap();
    println!(
        "\nschedules at {:.2} cycles/iteration on {} PEs\n",
        s.makespan() as f64 / 50.0,
        s.processors_used()
    );

    // GraphViz export with the paper's Figure 1 colouring.
    let w = workloads::cytron86();
    let cls = classify(&w.graph);
    println!("=== GraphViz (cytron86) ===");
    println!("{}", ddg::dot::to_dot(&w.graph, Some(&cls)));
}
