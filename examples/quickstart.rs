//! Quickstart: parallelize the paper's Figure 7 loop end to end.
//!
//! ```text
//! FOR I = 1 TO N
//!   A: A[I] = A[I-1] * E[I-1]
//!   B: B[I] = A[I]
//!   C: C[I] = B[I]
//!   D: D[I] = D[I-1] * C[I-1]
//!   E: E[I] = D[I]
//! ENDFOR
//! ```
//!
//! The loop is non-vectorizable (every statement sits on a recurrence) and
//! DOACROSS extracts nothing from it — yet the pattern scheduler overlaps
//! the two recurrences across processors. This example:
//!
//! 1. builds the loop from *source* through the `kn-ir` front end,
//! 2. runs the full scheduling pipeline (classification, `Cyclic-sched`,
//!    pattern detection),
//! 3. prints the paper-style schedule grid and the transformed loop,
//! 4. executes the schedule on real threads with real arithmetic and
//!    checks the values against sequential execution,
//! 5. compares against the DOACROSS baseline.
//!
//! Run with `cargo run --example quickstart`.

use mimd_loop_par::prelude::*;
use mimd_loop_par::runtime::{run_sequential, run_threaded, NodeFn, Semantics};
use mimd_loop_par::{doacross, metrics, sched, sim, workloads};
use std::sync::Arc;

fn main() {
    let iters: u32 = 1000;
    let w = workloads::figure7();
    let machine = MachineConfig::new(w.procs, w.k);

    // --- schedule ---
    let result = mimd_loop_par::parallelize(&w.graph, &machine, iters, &Default::default())
        .expect("figure 7 is schedulable");
    let pattern = result.schedule.cyclic_outcomes[0]
        .pattern()
        .expect("Theorem 1: a pattern emerges");
    println!(
        "pattern: {} iterations every {} cycles on {} processors (II = {:.2})",
        pattern.iters_per_period,
        pattern.cycles_per_period,
        pattern.kernel_processors(),
        pattern.steady_ii()
    );

    // --- paper-style grid for the first iterations ---
    let small = sched::schedule_loop(&w.graph, &machine, 5, &Default::default()).unwrap();
    println!("\nschedule grid (compare paper Figure 7(d)):");
    println!(
        "{}",
        ScheduleTable::from_timed(&small.timing).render_grid(&w.graph)
    );

    // --- transformed loop (paper Figure 7(e)) ---
    println!("transformed loop:");
    println!(
        "{}",
        sched::codegen::render_parallel_loop(&w.graph, pattern, "N")
    );

    // --- run it for real, on threads ---
    let fns: Vec<NodeFn> = vec![
        Arc::new(|_, x: &[u64]| x[0].wrapping_mul(x[1])), // A = A' * E'
        Arc::new(|_, x: &[u64]| x[0]),                    // B = A
        Arc::new(|_, x: &[u64]| x[0]),                    // C = B
        Arc::new(|_, x: &[u64]| x[0].wrapping_mul(x[1]).wrapping_add(3)), // D
        Arc::new(|_, x: &[u64]| x[0]),                    // E = D
    ];
    let sem = Semantics::new(fns);
    let par = run_threaded(&w.graph, &sem, &result.schedule.program).expect("runs");
    let seq = run_sequential(&w.graph, &sem, iters);
    assert_eq!(
        par, seq,
        "parallel execution must match sequential bit for bit"
    );
    println!("threaded execution over {iters} iterations: values identical to sequential ✓");

    // --- compare against DOACROSS ---
    let s = sim::sequential_time(&w.graph, iters);
    let ours = sim::simulate(
        &result.schedule.program,
        &w.graph,
        &machine,
        &TrafficModel::stable(0),
    )
    .unwrap()
    .makespan;
    let da = doacross::doacross_schedule(&w.graph, &machine, iters, &Default::default())
        .unwrap()
        .makespan();
    println!(
        "\nsequential {s} cycles; ours {ours} (Sp = {:.1}%); DOACROSS {da} (Sp = {:.1}%)",
        metrics::percentage_parallelism(s, ours),
        metrics::percentage_parallelism_clamped(s, da),
    );
    println!("(the paper reports 40% vs 0%; strict first-minimum greedy reaches 50%)");
}
