//! The fifth-order elliptic wave filter (Paulin & Knight 1989) — the
//! paper's Figure 12 workload, where DOACROSS collapses to 0% because the
//! filter's state recurrence threads almost the whole body.
//!
//! Also demonstrates the §3 idle-processor heuristic: the lone Flow-out
//! node (the filter's output sample) is folded into an idle slot of a
//! Cyclic processor instead of occupying a processor of its own.
//!
//! Run with `cargo run --example elliptic_filter`.

use mimd_loop_par::prelude::*;
use mimd_loop_par::{metrics, runtime, sim, workloads};

fn main() {
    let iters = 200;
    let w = workloads::elliptic();
    let m = MachineConfig::new(w.procs, w.k);

    let g = &w.graph;
    let adds = g.node_ids().filter(|&v| g.latency(v) == 1).count();
    let muls = g.node_ids().filter(|&v| g.latency(v) == 2).count();
    let cls = classify(g);
    println!(
        "{}: {} operations ({adds} add, {muls} mul), {} Cyclic / {} Flow-out",
        w.name,
        g.node_count(),
        cls.cyclic.len(),
        cls.flow_out.len()
    );

    let ours = schedule_loop(g, &m, iters, &Default::default()).unwrap();
    println!(
        "pattern II = {:.1} cycles/sample on {} PEs; flow placement {:?}",
        ours.cyclic_ii().unwrap(),
        ours.processors_used(),
        ours.flow_decision
    );

    let da = doacross_schedule(g, &m, iters, &Default::default()).unwrap();
    let s = sim::sequential_time(g, iters);
    let o = sim::simulate(&ours.program, g, &m, &TrafficModel::stable(0)).unwrap();
    println!(
        "sequential {s}; ours {} (Sp {:.1}%, utilization {:.0}%); DOACROSS {} (Sp {:.1}%)",
        o.makespan,
        metrics::percentage_parallelism(s, o.makespan),
        o.utilization() * 100.0,
        da.makespan(),
        metrics::percentage_parallelism_clamped(s, da.makespan()),
    );
    println!("(paper Fig. 12: ours 30.9% vs DOACROSS 0.0%)");

    // Semantic check: run the filter schedule on real threads with hashing
    // semantics and compare against sequential execution.
    let sem = runtime::Semantics::hashing(g);
    let par = runtime::run_threaded(g, &sem, &ours.program).expect("runs");
    let seq = runtime::run_sequential(g, &sem, iters);
    assert_eq!(par, seq);
    println!("threaded execution over {iters} samples: values identical to sequential ✓");
}
