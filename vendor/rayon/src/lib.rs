//! Minimal, API-compatible subset of [rayon](https://docs.rs/rayon) backed
//! by `std::thread::scope`.
//!
//! The build container has no access to a crates registry, so this shim
//! provides the slice of rayon the workspace actually uses:
//!
//! * `vec.into_par_iter().map(f).collect::<Vec<_>>()`
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()`
//! * [`join`]
//! * [`current_num_threads`]
//!
//! Semantics match rayon where it matters for this workspace: results are
//! returned **in input order** regardless of which worker ran which item,
//! and a panicking closure propagates to the caller. Work distribution is
//! dynamic (a shared work queue), so uneven per-item cost — common for the
//! experiment cells this repo fans out — still balances across cores.

use std::sync::Mutex;

/// Number of worker threads a parallel operation will use at most.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Core driver: map `f` over `items` on up to [`current_num_threads`]
/// workers pulling from a shared queue, then restore input order.
pub(crate) fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let queue = &queue;
    let f = &f;
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = queue.lock().unwrap().next();
                        match next {
                            Some((i, item)) => local.push((i, f(item))),
                            None => return local,
                        }
                    }
                })
            })
            .collect();
        let mut all = Vec::with_capacity(n);
        for h in handles {
            all.extend(h.join().expect("rayon worker panicked"));
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

pub mod iter {
    //! The `ParallelIterator` subset: `into_par_iter().map(..).collect()`.

    /// Conversion into a parallel iterator (rayon's entry point).
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A parallel iterator. Only the adapters this workspace uses are
    /// provided; `collect` drives execution.
    pub trait ParallelIterator: Sized {
        type Item: Send;

        /// Consume the iterator into an ordered `Vec`.
        fn drive(self) -> Vec<Self::Item>;

        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_vec(self.drive())
        }
    }

    /// Collection types `ParallelIterator::collect` can target.
    pub trait FromParallelIterator<T: Send> {
        fn from_par_vec(v: Vec<T>) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_vec(v: Vec<T>) -> Self {
            v
        }
    }

    /// Parallel iterator over an owned `Vec`.
    pub struct VecIter<T: Send>(Vec<T>);

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.0
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter(self)
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = VecIter<usize>;
        fn into_par_iter(self) -> VecIter<usize> {
            VecIter(self.collect())
        }
    }

    /// A mapped parallel iterator; the map runs on the worker threads.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            super::par_map_vec(self.base.drive(), self.f)
        }
    }
}

pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000usize)
            .into_par_iter()
            .map(|i| i as u64 * 3)
            .collect();
        assert_eq!(v.len(), 1000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn uneven_work_still_ordered() {
        let v: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                // Vary per-item cost to exercise the dynamic queue.
                let mut acc = i;
                for _ in 0..(i % 7) * 1000 {
                    acc = acc.wrapping_mul(31).wrapping_add(7);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    // Whether the panic surfaces as the worker payload (inline fallback on
    // single-core hosts) or via the join expect, it must propagate.
    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _: Vec<usize> = vec![1usize, 2, 3]
            .into_par_iter()
            .map(|i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
            .collect();
    }
}
