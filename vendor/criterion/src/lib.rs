//! Minimal, API-compatible subset of [criterion](https://docs.rs/criterion)
//! for offline builds.
//!
//! Implements the surface the `kn-bench` targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!` — with a simple
//! wall-clock measurement loop: warm up, pick an iteration count that fills
//! a fixed time budget, then report the median of `sample_size` samples as
//! `ns/iter` on stdout.
//!
//! The numbers are honest medians but carry none of criterion's statistics;
//! the repo's machine-readable perf trajectory comes from the `kn-bench`
//! binary (`BENCH_sched.json`), not from this shim.

use std::time::{Duration, Instant};

/// Measurement settings shared by `Criterion` and groups.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    /// Target wall-clock time for one sample.
    sample_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            sample_time: Duration::from_millis(20),
        }
    }
}

/// Entry point handed to every bench function.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.settings, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.settings, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.settings, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, not reported, by the shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink (prevents the optimizer from deleting the benched work).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, settings: Settings, mut f: F) {
    // Calibrate: one iteration to estimate cost, then fit the time budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample =
        ((settings.sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000)) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "bench {label:<50} {median:>14.1} ns/iter ({per_sample} iters x {} samples)",
        settings.sample_size
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        (0..n).fold(0u64, |a, x| a.wrapping_add(x * x))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| work(100)));
    }

    #[test]
    fn groups_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        g.throughput(Throughput::Elements(10));
        g.bench_function("plain", |b| b.iter(|| work(10)));
        g.bench_with_input(BenchmarkId::new("param", 32), &32u64, |b, &n| {
            b.iter(|| work(n))
        });
        g.finish();
    }
}
