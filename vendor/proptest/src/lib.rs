//! Minimal, API-compatible subset of [proptest](https://docs.rs/proptest)
//! for offline builds.
//!
//! Provides exactly the surface this workspace's property tests use:
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, `ProptestConfig`,
//! integer-range and tuple strategies, `prop_map` / `prop_flat_map`, and
//! `proptest::collection::vec`.
//!
//! Differences from real proptest, deliberate for a shim:
//! * no shrinking — a failing case reports its arguments and case number;
//! * generation is a deterministic splitmix64 stream seeded from the test's
//!   module path and name, so every run explores the same cases (stable CI)
//!   while different tests explore different ones.

pub mod test_runner {
    /// Failure raised by `prop_assert!`-family macros; carried as a value so
    /// a failing case can report which generated inputs produced it.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's fully-qualified name (stable across runs).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[lo, hi)`; `hi > lo` required.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(hi > lo, "empty range");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values (no shrinking in the shim).
    pub trait Strategy: Clone {
        type Value: Debug + Clone;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: Debug + Clone,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            S: Strategy,
            F: Fn(Self::Value) -> S + Clone,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Debug + Clone>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        O: Debug + Clone,
        F: Fn(B::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S + Clone,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    (rng.below(lo as u64, hi as u64 + 1)) as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec()`]: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.min as u64, self.size.max as u64 + 1) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element`s with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test configuration (`cases` = generated inputs per test).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($tail)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($tail:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __args = format!("{:#?}", ($(&$arg,)*));
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "[proptest] {} failed at case {}/{}: {}\nargs = {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e,
                        __args
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($tail)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), __a, __b),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0usize..=4, z in 1u64..2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert_eq!(z, 1);
        }

        #[test]
        fn combinators_compose(v in collection::vec((0usize..5, 0usize..5), 0..=8)) {
            prop_assert!(v.len() <= 8);
            for &(a, b) in &v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn flat_map_uses_inner(n in (2usize..6).prop_flat_map(|n| {
            collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
            for &x in &v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn early_ok_return_works(flag in 0u32..2) {
            if flag == 0 {
                return Ok(());
            }
            prop_assert_eq!(flag, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
